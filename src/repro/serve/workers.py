"""Shard execution: runtime replicas, worker processes, crash recovery.

The execution layer under :class:`~repro.serve.farm.ShardedNodeFarm`
and :class:`~repro.serve.daemon.ServingDaemon`:

* :class:`FarmSpec` — a picklable recipe for one runtime replica
  (model + fallback + :class:`~repro.core.api.RuntimeConfig` +
  :class:`~repro.obs.ObsConfig`).  Every replica is built from a
  pickle round-trip of the spec's models, so the in-process reference
  constructs *exactly* what a spawned worker deserialises — sharing no
  mutable state with the parent either way.
* :class:`ReplicaSource` — a per-process warm template: the first
  replica pays the full cold build (conversion + compilation), later
  replicas deserialise the cached converted/compiled models.  Replicas
  still share no mutable state (the cache holds bytes), and warm ==
  cold bit-exactly because conversion and compilation are
  deterministic.
* :class:`ShardTask` / :class:`StreamTask` / :class:`PlantTask` /
  :class:`TaskResult` — units of work.  Shard tasks are **pure**
  (re-executing one from scratch yields bit-identical results, which
  makes crash-requeue provably safe).  Stream tasks are stateful
  continuations of a long-lived per-stream replica; they become pure
  again when they carry their stream's full ``replay_batches`` history
  (the crash-recovery path).  Plant tasks run one shard's complete
  **closed-loop** session (the spec's plant synthesises every frame
  and consumes every published action); like shard tasks they are pure
  — the whole loop is a function of (spec, seed entropy, shard) — so
  crash-requeue stays safe even though actions feed back.
* :func:`execute_shard_task` / :func:`execute_stream_task` — the
  execution paths shared by the in-process reference and the workers.
* :class:`WorkerPool` — a **persistent** ``multiprocessing`` (spawn)
  pool.  ``start()`` spawns the workers once; ``submit()`` ships frame
  blocks against the live workers and ``pump()``/``wait()`` drive
  supervision (crash detection via liveness polling, worker respawn,
  task requeue, stream→worker affinity).  ``run()`` remains as the
  one-shot compatibility path and reuses a started pool when present.

Frames travel to workers through a per-block :class:`SharedMemory`
block and per-frame numeric outputs come back through another (score,
machine code, latency breakdown, status code, publish flag — see
:data:`OUTPUT_COLUMNS`); the rich :class:`FrameRecord` stream returns
through a **per-worker result pipe**.  One pipe per worker — never a
queue shared between workers — is load-bearing for crash recovery:
``multiprocessing.Queue.put`` hands the payload to a feeder thread
that flushes it while holding a write lock *shared by every writer*,
so a worker that hard-exits moments after a put can die inside that
critical section and silently deadlock all surviving writers.  A pipe
has exactly one writer and no shared lock, so a crashing worker can
only ever poison its own channel, and results it flushed before dying
are still delivered ahead of the EOF that signals the crash.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import ObsConfig, Observability
from repro.serve.sharding import shard_seed
from repro.soc.runtime import (
    STATUS_CORRUPT,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_STALE,
    STATUS_WATCHDOG,
    CentralNodeRuntime,
    FrameRecord,
)

__all__ = [
    "FarmSpec",
    "ReplicaSource",
    "ShardTask",
    "StreamTask",
    "StreamFinish",
    "PlantTask",
    "TaskResult",
    "localize_shard_task",
    "WorkerCrashError",
    "WorkerPool",
    "BlockHandle",
    "PoolStats",
    "execute_shard_task",
    "execute_stream_task",
    "execute_plant_task",
    "OUTPUT_COLUMNS",
    "STATUS_CODES",
]

#: Status → numeric code for the shared-memory output buffer.
STATUS_CODES: Tuple[str, ...] = (STATUS_OK, STATUS_DEGRADED, STATUS_STALE,
                                 STATUS_CORRUPT, STATUS_WATCHDOG)

#: Columns of the per-frame output row a worker writes into shared
#: memory (float64 each).  ``machine`` is the index into the
#: controller's ``machine_names`` (-1 = no trip); ``status`` indexes
#: :data:`STATUS_CODES`.
OUTPUT_COLUMNS: Tuple[str, ...] = ("score", "machine", "total_latency_s",
                                   "node_latency_s", "hub_delay_s",
                                   "status", "published")


@dataclass(frozen=True)
class FarmSpec:
    """Picklable recipe for one shard's runtime replica.

    ``model``/``fallback`` may be float :class:`~repro.nn.Model`\\ s or
    converted :class:`~repro.hls.HLSModel`\\ s — they pass through
    :func:`repro.core.api.build_runtime`, which converts and compiles
    per ``config.compile_level``.  ``obs`` being non-None gives every
    replica its *own* observability bundle; the farm merges the
    per-shard snapshots afterwards (:mod:`repro.serve.merge`).

    ``injector`` arms every replica with the same
    :class:`~repro.soc.faults.FaultInjector` recipe (specs + seed);
    schedules are a pure function of (seed, spec, frame index), so each
    shard's chaos is identical no matter which worker runs it, and the
    runtime's speculative ladder keeps the batched fast path live under
    the armed injector.

    ``plant`` (a :class:`~repro.plants.Plant`, or None for the default
    beam-loss wiring) rides the spec to every replica: it supplies the
    hub topology and trip controller at build time, and — for
    closed-loop plants — the per-shard session a :class:`PlantTask`
    drives.  Plants are small frozen dataclasses, so the pickle
    round-trip is cheap and every worker reconstructs the same
    workload.
    """

    model: Any
    fallback: Any = None
    config: Any = None          # RuntimeConfig (default built lazily)
    obs: Optional[ObsConfig] = None
    injector: Any = None        # FaultInjector (stateless, picklable)
    plant: Any = None           # Plant (frozen, picklable)

    def build_runtime(self) -> CentralNodeRuntime:
        """A fresh, fully private runtime replica (cold build).

        The models are pickle round-tripped so replicas built in this
        process share nothing with the spec (or each other) — the exact
        object graph a spawned worker gets off the wire.
        """
        from repro.core.api import RuntimeConfig, build_runtime

        model = pickle.loads(pickle.dumps(self.model))
        fallback = (pickle.loads(pickle.dumps(self.fallback))
                    if self.fallback is not None else None)
        injector = (pickle.loads(pickle.dumps(self.injector))
                    if self.injector is not None else None)
        plant = (pickle.loads(pickle.dumps(self.plant))
                 if self.plant is not None else None)
        return build_runtime(
            model,
            fallback=fallback,
            config=self.config or RuntimeConfig(),
            obs=Observability.from_config(self.obs),
            injector=injector,
            plant=plant,
        )


class ReplicaSource:
    """Per-process warm replica factory for one :class:`FarmSpec`.

    The first :meth:`build_runtime` call performs the full cold build
    (pickle round-trip, float→HLS conversion, graph compilation per
    ``config.compile_level``) and caches the *converted and compiled*
    models as pickled bytes.  Every later call deserialises that
    template and assembles a fresh runtime shell (boards, RAMs, hub
    network, controller, counters) around it.  Replicas therefore
    share **no mutable state** — the cache holds bytes, not objects —
    while the expensive model work is paid once per worker process
    instead of once per task.

    Warm is bit-identical to cold: conversion and compilation are
    deterministic functions of the spec, so the cached template is
    exactly what every cold build would have produced, and
    :func:`repro.core.api.build_runtime` skips re-compilation when it
    receives an already-compiled :class:`~repro.hls.HLSModel`.
    """

    def __init__(self, spec: FarmSpec):
        self.spec = spec
        self._template: Optional[bytes] = None
        self.cold_builds = 0
        self.warm_builds = 0

    def build_runtime(self) -> CentralNodeRuntime:
        from repro.core.api import RuntimeConfig, build_runtime

        spec = self.spec
        if self._template is None:
            runtime = spec.build_runtime()
            fallback_model = (runtime.fallback_board.ip.hls_model
                              if runtime.fallback_board is not None else None)
            self._template = pickle.dumps(
                (runtime.board.ip.hls_model, fallback_model))
            self.cold_builds += 1
            return runtime
        model, fallback = pickle.loads(self._template)
        injector = (pickle.loads(pickle.dumps(spec.injector))
                    if spec.injector is not None else None)
        plant = (pickle.loads(pickle.dumps(spec.plant))
                 if spec.plant is not None else None)
        self.warm_builds += 1
        return build_runtime(
            model,
            fallback=fallback,
            config=spec.config or RuntimeConfig(),
            obs=Observability.from_config(spec.obs),
            injector=injector,
            plant=plant,
        )


@dataclass(frozen=True)
class ShardTask:
    """One shard's complete, self-contained unit of work.

    ``global_indices`` are the shard's frames (arrival order) in the
    shared frame buffer; ``batches`` is the micro-batch plan as
    half-open ranges over those indices.  ``crash`` is a test hook: a
    worker claiming a crash-flagged task dies hard before executing it
    (the supervisor requeues it with the flag cleared).
    """

    task_id: int
    shard: int
    seed_entropy: Optional[int]
    global_indices: Tuple[int, ...]
    batches: Tuple[Tuple[int, int], ...]
    crash: bool = False


def localize_shard_task(task: ShardTask,
                        frames: np.ndarray) -> Tuple[ShardTask, np.ndarray]:
    """Rewrite *task* against its own frame slice (cross-host shipping).

    The host transport sends each shard only its own frames; the
    returned task indexes that slice contiguously (``0..n-1``) while
    keeping ``shard``/``seed_entropy``/``batches`` untouched, so the
    replica sees exactly the frames, seed, and batch boundaries the
    global task describes — bit-identical by construction.  The
    caller scatters the n local output rows back to the original
    ``global_indices``.
    """
    idx = np.asarray(task.global_indices, dtype=np.intp)
    local = np.ascontiguousarray(frames[idx], dtype=np.float64)
    localized = dataclasses.replace(
        task, global_indices=tuple(range(len(idx))))
    return localized, local


@dataclass(frozen=True)
class PlantTask:
    """One shard's complete closed-loop plant session.

    The worker synthesises every frame from the spec's plant session
    (seeded from ``(seed_entropy, shard)``) and feeds each published
    action back before the next frame — no caller frames travel at
    all.  ``global_indices`` are the rows of the block's output matrix
    this shard fills (its frames in the farm's interleaved global
    order).

    Closed-loop streams never split across workers: the whole session
    is one task, so actuation ordering within the shard is total and
    the result is bit-identical to the in-process reference no matter
    how many workers the pool runs.  The task is **pure** — a fresh
    replica and a fresh session are a function of (spec, seed entropy,
    shard) — so crash-requeue is as safe as for :class:`ShardTask`.
    ``crash`` is the same die-before-executing test hook.
    """

    task_id: int
    shard: int
    seed_entropy: Optional[int]
    global_indices: Tuple[int, ...]
    crash: bool = False

    @property
    def batches(self) -> Tuple[Tuple[int, int], ...]:
        """Closed-loop stepping is per-frame: one micro-batch each."""
        return tuple((i, i + 1) for i in range(len(self.global_indices)))


@dataclass(frozen=True)
class StreamTask:
    """One micro-batch of one long-lived stream.

    Unlike :class:`ShardTask`, a stream task is *stateful*: the worker
    that owns the stream keeps its runtime replica alive between
    batches, so batch ``k+1`` continues exactly where batch ``k`` left
    off (record index and seed derivation, degradation hysteresis, SEU
    taint, ACNET publish ordering).  The pool pins every stream to its
    home worker for exactly this reason.

    ``replay_batches`` makes a task **self-contained** again: the
    task's frame block then leads with the stream's full accepted
    history (one half-open range per historical batch, stream-local
    indices), so a fresh worker can rebuild the replica state by
    re-running history before the new batch.  Replay is a pure function
    of the accepted frame sequence and batch boundaries, hence
    bit-identical to the lost state — the crash-recovery path.

    ``start`` is the stream-local index of the first *new* frame;
    ``n_frames`` counts the new frames (the trailing rows of the
    block).  ``crash`` is the same test hook as on shard tasks.
    """

    task_id: int
    stream: int
    seed_entropy: Optional[int]
    start: int
    n_frames: int
    replay_batches: Tuple[Tuple[int, int], ...] = ()
    crash: bool = False

    @property
    def replay_rows(self) -> int:
        return sum(b - a for a, b in self.replay_batches)

    @property
    def self_contained(self) -> bool:
        """True when this task can run on a worker with no stream state."""
        return self.start == 0 or self.replay_rows == self.start


@dataclass(frozen=True)
class StreamFinish:
    """Close a stream: return its final health/obs snapshot, drop state."""

    task_id: int
    stream: int


@dataclass
class TaskResult:
    """Everything one executed task produced."""

    task_id: int
    shard: int
    records: List[FrameRecord]
    health: Dict[str, Any]
    obs_snapshot: Optional[Dict[str, Any]] = None


class WorkerCrashError(RuntimeError):
    """The pool exhausted its restart budget (or lost all workers)."""


# ----------------------------------------------------------------------
# Task execution (shared by the inline reference and worker processes)
# ----------------------------------------------------------------------
def output_row_writer(runtime: CentralNodeRuntime) -> Callable[[Any], tuple]:
    """Build a FrameRecord → :data:`OUTPUT_COLUMNS` row encoder.

    The machine-name→code and status→code maps are precomputed once —
    ``machine_names.index()`` per frame was a linear scan per record.
    """
    machine_codes = {name: float(i) for i, name
                     in enumerate(runtime.controller.machine_names)}
    status_codes = {status: float(i)
                    for i, status in enumerate(STATUS_CODES)}

    def row(r: FrameRecord) -> tuple:
        machine = r.decision.machine
        return (
            float(r.decision.score),
            -1.0 if machine is None else machine_codes[machine],
            float(r.total_latency_s),
            float(r.node_latency_s),
            float(r.hub_delay_s),
            status_codes[r.status],
            1.0 if r.published else 0.0,
        )

    return row


def execute_shard_task(spec: FarmSpec, task: ShardTask, frames: np.ndarray,
                       out: Optional[np.ndarray] = None, *,
                       source: Optional[ReplicaSource] = None) -> TaskResult:
    """Run one shard task on a fresh replica; optionally fill *out*.

    *frames* is the **global** frame block; the task's own indices
    select the shard's slice.  *out* (when given) is the global
    ``(n_frames, len(OUTPUT_COLUMNS))`` output buffer; the task writes
    exactly its own rows.  *source* (when given) supplies warm replicas
    (bit-identical to cold ones).  Pure: no state survives the call
    except the returned :class:`TaskResult` and the output rows.
    """
    runtime = (source.build_runtime() if source is not None
               else spec.build_runtime())
    seed = shard_seed(task.seed_entropy, task.shard)
    local = frames[np.asarray(task.global_indices, dtype=np.intp)]
    records: List[FrameRecord] = []
    for a, b in task.batches:
        records.extend(runtime.run(local[a:b], seed=seed))
    if len(records) != len(task.global_indices):
        raise AssertionError(
            f"shard {task.shard}: {len(records)} records for "
            f"{len(task.global_indices)} frames")
    if out is not None:
        row = output_row_writer(runtime)
        for g, r in zip(task.global_indices, records):
            out[g, :] = row(r)
    obs_snapshot = (runtime.obs.snapshot(runtime=runtime)
                    if runtime.obs is not None else None)
    return TaskResult(
        task_id=task.task_id,
        shard=task.shard,
        records=records,
        health=dataclasses.asdict(runtime.health_report()),
        obs_snapshot=obs_snapshot,
    )


def execute_plant_task(spec: FarmSpec, task: PlantTask,
                       frames: Optional[np.ndarray] = None,
                       out: Optional[np.ndarray] = None, *,
                       source: Optional[ReplicaSource] = None) -> TaskResult:
    """Run one closed-loop plant session on a fresh replica.

    *frames* is accepted (and ignored) so the worker dispatch path
    stays uniform — a plant block ships a placeholder frame buffer.
    *out* (when given) receives this shard's rows at
    ``task.global_indices``.  Pure: session state dies with the call.
    """
    plant = spec.plant
    if plant is None or not getattr(plant, "closed_loop", False):
        raise ValueError(
            f"PlantTask needs a closed-loop plant on the spec, got "
            f"{type(plant).__name__ if plant is not None else None}")
    from repro.plants import run_closed_loop

    runtime = (source.build_runtime() if source is not None
               else spec.build_runtime())
    seed = shard_seed(task.seed_entropy, task.shard)
    session = runtime.plant.session(seed)
    records = run_closed_loop(runtime, session,
                              len(task.global_indices), seed=seed)
    if out is not None:
        row = output_row_writer(runtime)
        for g, r in zip(task.global_indices, records):
            out[g, :] = row(r)
    health = dataclasses.replace(runtime.health_report(),
                                 control=session.quality(records))
    if runtime.obs is not None:
        from repro.plants import fold_control_metrics

        fold_control_metrics(runtime.obs.metrics, health.control)
    obs_snapshot = (runtime.obs.snapshot(runtime=runtime)
                    if runtime.obs is not None else None)
    return TaskResult(
        task_id=task.task_id,
        shard=task.shard,
        records=records,
        health=dataclasses.asdict(health),
        obs_snapshot=obs_snapshot,
    )


def execute_stream_task(spec: FarmSpec, task: StreamTask, frames: np.ndarray,
                        out: Optional[np.ndarray] = None, *,
                        source: Optional[ReplicaSource] = None,
                        streams: Optional[Dict[int, dict]] = None,
                        ) -> TaskResult:
    """Run one stream batch against persistent per-stream replica state.

    *streams* maps stream id → live state; pass the same dict across
    calls to keep replicas warm between batches (the worker does
    exactly this).  *frames* is the task's block: ``replay_rows``
    history rows first, then ``n_frames`` new rows.  *out* (when given)
    receives one row per **new** frame at rows ``0..n_frames-1``.
    """
    if streams is None:
        streams = {}
    frames = np.asarray(frames, dtype=np.float64)
    state = streams.get(task.stream)
    if state is not None and task.replay_batches:
        # A replay task supersedes whatever state exists (the
        # supervisor only replays when the home worker's state died,
        # so this is defensive — but replay must win if it happens).
        state = None
    if state is None:
        if not task.self_contained:
            raise AssertionError(
                f"stream {task.stream}: continuation task at start "
                f"{task.start} reached a worker holding no stream state")
        runtime = (source.build_runtime() if source is not None
                   else spec.build_runtime())
        seed = shard_seed(task.seed_entropy, task.stream)
        pos = 0
        for a, b in task.replay_batches:
            runtime.run(frames[pos:pos + (b - a)], seed=seed)
            pos += b - a
        if len(runtime.records) != task.start:
            raise AssertionError(
                f"stream {task.stream}: replay rebuilt {len(runtime.records)}"
                f" frames of state, task starts at {task.start}")
        state = {"runtime": runtime, "seed": seed}
        streams[task.stream] = state
    runtime = state["runtime"]
    if len(runtime.records) != task.start:
        raise AssertionError(
            f"stream {task.stream}: replica state is at frame "
            f"{len(runtime.records)}, task starts at {task.start}")
    new = frames[task.replay_rows:task.replay_rows + task.n_frames]
    records = list(runtime.run(new, seed=state["seed"]))
    if out is not None:
        row = output_row_writer(runtime)
        for i, r in enumerate(records):
            out[i, :] = row(r)
    return TaskResult(
        task_id=task.task_id,
        shard=task.stream,
        records=records,
        health=dataclasses.asdict(runtime.health_report()),
    )


def finish_stream(streams: Dict[int, dict], task: StreamFinish) -> TaskResult:
    """Drop a stream's replica state, returning its final health/obs."""
    state = streams.pop(task.stream, None)
    if state is None:
        return TaskResult(task_id=task.task_id, shard=task.stream,
                          records=[], health={})
    runtime = state["runtime"]
    obs_snapshot = (runtime.obs.snapshot(runtime=runtime)
                    if runtime.obs is not None else None)
    return TaskResult(
        task_id=task.task_id,
        shard=task.stream,
        records=[],
        health=dataclasses.asdict(runtime.health_report()),
        obs_snapshot=obs_snapshot,
    )


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _attach_shm(name: str):
    """Attach an existing SharedMemory block.

    Spawn children share the parent's resource-tracker process, whose
    name cache is a set — the attach-side ``register`` this interpreter
    performs is therefore a no-op duplicate, and the parent's
    ``unlink`` retires the single entry.  (Do **not** ``unregister``
    here: that would strip the parent's entry and make its unlink
    complain about an unknown name.)
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_main(worker_id: int, spec: FarmSpec, inbox, results) -> None:
    """Worker loop: pull task messages until the ``None`` sentinel.

    One :class:`ReplicaSource` per process keeps replica builds warm
    across tasks; the ``streams`` dict keeps per-stream runtimes alive
    between stream batches.  Shared-memory blocks are per *frame
    block* now (the pool is persistent), so each task message carries
    its block's shm names and the worker attaches/detaches per task.

    *results* is this worker's private end of a one-writer pipe —
    ``send`` completes synchronously in this thread, so once a task's
    result is on the wire no later crash can retract or block it.  A
    deterministic task failure is reported as an ``("error", ...)``
    message (with traceback) before the worker dies, so the supervisor
    can fail loudly instead of requeue-looping a poisoned task.
    """
    from queue import Empty

    source = ReplicaSource(spec)
    streams: Dict[int, dict] = {}
    parent_pid = os.getppid()
    try:
        while True:
            try:
                msg = inbox.get(timeout=1.0)
            except Empty:
                # Orphan guard: if the supervising process vanished
                # without the sentinel (SIGKILLed host agent, crashed
                # parent), exit instead of blocking on the inbox
                # forever.  getppid() changes the moment the parent
                # dies (re-parented to init/subreaper).
                if os.getppid() != parent_pid:
                    break
                continue
            if msg is None:
                break
            kind = msg[0]
            task = msg[1]
            try:
                if kind == "finish":
                    result = finish_stream(streams, task)
                    results.send(("done", worker_id, task.task_id, result))
                    continue
                _, _, f_name, f_shape, o_name, o_shape = msg
                if task.crash:
                    # Test hook: die hard (no cleanup, no result) so
                    # the supervisor exercises real crash detection.
                    os._exit(13)
                f_shm = _attach_shm(f_name)
                o_shm = _attach_shm(o_name)
                try:
                    frames = np.ndarray(f_shape, dtype=np.float64,
                                        buffer=f_shm.buf)
                    out = np.ndarray(o_shape, dtype=np.float64,
                                     buffer=o_shm.buf)
                    if kind == "shard":
                        result = execute_shard_task(spec, task, frames, out,
                                                    source=source)
                    elif kind == "plant":
                        result = execute_plant_task(spec, task, frames, out,
                                                    source=source)
                    else:
                        result = execute_stream_task(spec, task, frames, out,
                                                     source=source,
                                                     streams=streams)
                finally:
                    f_shm.close()
                    o_shm.close()
                results.send(("done", worker_id, task.task_id, result))
            except Exception:
                import traceback

                results.send(("error", worker_id, task.task_id,
                              traceback.format_exc()))
                raise
    finally:
        results.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Supervisor bookkeeping (cumulative for a persistent pool).

    ``host_failures`` counts remote host-agent connections lost by a
    :class:`~repro.serve.remote.HostPool` (always 0 for a plain
    in-process pool); each one requeued that host's in-flight shards.
    """

    workers: int = 0
    worker_restarts: int = 0
    requeued_tasks: int = 0
    host_failures: int = 0


class _Entry:
    """One submitted task with its routing/bookkeeping state."""

    __slots__ = ("task", "kind", "block", "completed")

    def __init__(self, task, kind: str, block: "BlockHandle"):
        self.task = task
        self.kind = kind            # "shard" | "stream" | "finish" | "plant"
        self.block = block
        self.completed = False


@dataclass
class BlockHandle:
    """One submitted frame block making its way through the pool.

    ``results`` fills in by ``task_id`` as workers report; ``outputs``
    and ``stats`` (the per-block delta of the pool's cumulative
    counters) appear when ``done`` flips.  ``failed`` collects tasks
    the pool could not run — only possible for non-self-contained
    stream tasks whose home worker died (the caller owns the stream
    history and decides whether to resubmit a replay).
    """

    block_id: int
    tasks: Tuple[Any, ...]
    results: Dict[int, TaskResult] = field(default_factory=dict)
    outputs: Optional[np.ndarray] = None
    failed: List[Any] = field(default_factory=list)
    done: bool = False
    stats: Optional[PoolStats] = None
    _f_shm: Any = None
    _o_shm: Any = None
    _out_shape: Tuple[int, int] = (0, 0)
    _frames_shape: Tuple[int, ...] = (0, 0)
    _remaining: int = 0
    _stats0: Tuple[int, int] = (0, 0)


class WorkerPool:
    """Persistent spawn-based worker pool with crash detection.

    Lifecycle: :meth:`start` spawns ``n_workers`` processes once (each
    holding a warm :class:`ReplicaSource`); :meth:`submit` ships frame
    blocks against the live workers; :meth:`pump` (or :meth:`wait`)
    drives dispatch, result draining, and liveness supervision;
    :meth:`close` tears the pool down.  :meth:`run` is the one-shot
    compatibility path — on an unstarted pool it spawns, executes, and
    tears down like the pre-daemon pool did; on a started pool it is a
    warm ``submit`` + ``wait``.

    Any worker death is repaired up to the restart budget — idle or
    busy, whether or not other workers survive — so a persistent pool
    holds its capacity (an N-worker pool that quietly degrades to one
    worker would pass every bit-identity test while losing all its
    throughput).  A busy casualty's pure task is requeued; a stream
    continuation dies with its replica state and is failed back to the
    caller for replay.

    Parameters
    ----------
    spec:
        The replica recipe shipped to every worker once (at spawn).
    n_workers:
        Processes held live while the pool is up.
    start_method:
        ``multiprocessing`` start method; the default ``spawn`` is the
        only one that never inherits parent state (determinism) and
        works identically everywhere.
    max_restarts:
        Cumulative crash budget; exceeding it raises
        :class:`WorkerCrashError` (a farm that cannot hold its workers
        must fail loudly).
    stall_timeout_s:
        Maximum wall time with work outstanding but no completed task,
        no detected crash, and no respawn before the pool gives up
        (guards CI against silent hangs).
    """

    def __init__(self, spec: FarmSpec, n_workers: int, *,
                 start_method: str = "spawn", max_restarts: int = 8,
                 stall_timeout_s: float = 300.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.spec = spec
        self.n_workers = n_workers
        self.start_method = start_method
        self.max_restarts = max_restarts
        self.stall_timeout_s = stall_timeout_s
        self.stats = PoolStats()
        self._started = False
        self._persistent = False
        self._ctx = None
        self._workers: Dict[int, Any] = {}
        self._inboxes: Dict[int, Any] = {}
        self._outpipes: Dict[int, Any] = {}     # wid -> parent recv end
        self._pipe_wid: Dict[Any, int] = {}
        self._assigned: Dict[int, Optional[_Entry]] = {}
        self._stream_homes: Dict[int, int] = {}  # stream -> wid
        self._pending: deque = deque()           # of _Entry
        self._active: Dict[int, _Entry] = {}     # task_id -> live entry
        self._blocks: List[BlockHandle] = []
        self._next_wid = 0
        self._next_block = 0
        self._last_progress = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> "WorkerPool":
        """Spawn the workers; the pool then holds capacity until close.

        Idempotent.  A started pool respawns *any* dead worker (idle or
        busy) to keep ``n_workers`` live, each respawn counted against
        ``max_restarts``.
        """
        if not self._started:
            self._persistent = True
            self._start(self.n_workers)
        return self

    def _start(self, n: int) -> None:
        import multiprocessing as mp

        self._ctx = mp.get_context(self.start_method)
        self.stats.workers = self.n_workers
        self._started = True
        self._last_progress = time.monotonic()
        for _ in range(n):
            self._spawn_worker()

    def _spawn_worker(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        inbox = self._ctx.Queue()
        r_recv, r_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.spec, inbox, r_send),
            daemon=True,
        )
        proc.start()
        # Drop the parent's copy of the send end so the pipe hits EOF
        # the instant its (sole) worker dies.
        r_send.close()
        self._workers[wid] = proc
        self._inboxes[wid] = inbox
        self._outpipes[wid] = r_recv
        self._pipe_wid[r_recv] = wid
        self._assigned[wid] = None
        return wid

    def _drop_pipe(self, wid: int) -> None:
        conn = self._outpipes.pop(wid, None)
        if conn is not None:
            self._pipe_wid.pop(conn, None)
            conn.close()

    def close(self) -> None:
        """Tear the pool down (sentinels, join, force-kill stragglers)."""
        if not self._started:
            return
        for inbox in self._inboxes.values():
            try:
                inbox.put(None)
            except Exception:  # pragma: no cover - defensive
                pass
        for proc in self._workers.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for wid in list(self._outpipes):
            self._drop_pipe(wid)
        self._workers.clear()
        self._inboxes.clear()
        self._assigned.clear()
        self._stream_homes.clear()
        self._pending.clear()
        self._active.clear()
        for block in self._blocks:
            if not block.done:
                self._release_block_shm(block)
        self._blocks.clear()
        self._started = False
        self._persistent = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    def alive_workers(self) -> int:
        """Live worker processes right now (no supervision side effects)."""
        return sum(1 for p in self._workers.values() if p.is_alive())

    def worker_ids(self) -> List[int]:
        return sorted(self._workers)

    def worker_pid(self, wid: int) -> int:
        return self._workers[wid].pid

    def stream_home(self, stream: int) -> Optional[int]:
        """The worker holding *stream*'s replica state, if any."""
        return self._stream_homes.get(stream)

    def result_connections(self) -> List[Any]:
        """The live workers' result pipe ends (selectable objects).

        For callers embedding the pool in their own event loop (the
        host agent): each returned :class:`~multiprocessing.connection.
        Connection` has a ``fileno()`` and becomes readable the moment
        its worker posts a result, so it can sit in a selector beside
        sockets instead of being poll-pumped on a timer.  Never read
        them directly — readiness means "call :meth:`pump` now".  The
        set changes when a worker dies or respawns; re-sync after every
        pump.
        """
        return list(self._outpipes.values())

    def _outstanding(self) -> int:
        return len(self._pending) + sum(
            1 for e in self._assigned.values()
            if e is not None and not e.completed)

    # -- submission ----------------------------------------------------
    def submit(self, frames: np.ndarray, tasks: Sequence[Any],
               ) -> BlockHandle:
        """Ship a frame block + its tasks to the live workers.

        Shard tasks index *frames* globally and fill the block's output
        matrix at their own rows.  A stream task (at most one per
        block) takes the whole block as its frames (replay history
        first, new frames last) and fills rows ``0..n_frames-1``.
        :class:`StreamFinish` blocks carry no frames.  Task ids must be
        unique among in-flight work (blocks may overlap arbitrarily).
        """
        from multiprocessing import shared_memory

        if not self._started:
            raise RuntimeError("pool is not started")
        if not tasks:
            raise ValueError("submit needs at least one task")
        for t in tasks:
            if t.task_id in self._active:
                raise ValueError(
                    f"task_id {t.task_id} is already in flight")

        frames = np.ascontiguousarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            frames = frames.reshape(len(frames), -1)
        kinds = []
        for t in tasks:
            if isinstance(t, ShardTask):
                kinds.append("shard")
            elif isinstance(t, StreamTask):
                kinds.append("stream")
            elif isinstance(t, StreamFinish):
                kinds.append("finish")
            elif isinstance(t, PlantTask):
                kinds.append("plant")
            else:
                raise TypeError(f"unsupported task type {type(t).__name__}")
        if len(set(kinds)) > 1:
            raise ValueError("a block must hold tasks of one kind")
        kind = kinds[0]
        if kind == "stream" and len(tasks) != 1:
            raise ValueError("a stream block holds exactly one task")

        if kind == "stream":
            out_rows = tasks[0].n_frames
        elif kind == "shard":
            out_rows = frames.shape[0]
        elif kind == "plant":
            # Plant blocks ship a placeholder frame buffer — workers
            # synthesise their own frames — but the output matrix still
            # covers every global row the tasks will fill.
            out_rows = sum(len(t.global_indices) for t in tasks)
        else:
            out_rows = 0
        out_shape = (out_rows, len(OUTPUT_COLUMNS))

        handle = BlockHandle(
            block_id=self._next_block,
            tasks=tuple(tasks),
            _out_shape=out_shape,
            _remaining=len(tasks),
            _stats0=(self.stats.worker_restarts, self.stats.requeued_tasks),
        )
        self._next_block += 1
        if kind != "finish":
            f_shm = shared_memory.SharedMemory(
                create=True, size=max(frames.nbytes, 8))
            o_shm = shared_memory.SharedMemory(
                create=True, size=max(8 * out_rows * len(OUTPUT_COLUMNS), 8))
            np.ndarray(frames.shape, dtype=np.float64,
                       buffer=f_shm.buf)[...] = frames
            np.ndarray(out_shape, dtype=np.float64,
                       buffer=o_shm.buf)[...] = np.nan
            handle._f_shm = f_shm
            handle._o_shm = o_shm
            handle._frames_shape = frames.shape
        self._blocks.append(handle)
        for t, k in zip(tasks, kinds):
            entry = _Entry(t, k, handle)
            self._pending.append(entry)
            self._active[t.task_id] = entry
        self._last_progress = time.monotonic()
        return handle

    # -- supervision ---------------------------------------------------
    def pump(self, timeout_s: float = 0.05) -> bool:
        """One supervision step: dispatch, drain, repair.

        Returns True when any result landed.  Raises
        :class:`WorkerCrashError` on budget exhaustion, a reported task
        error, or a stall (work outstanding, nothing moving).
        """
        if not self._started:
            raise RuntimeError("pool is not started")
        self._dispatch()
        progressed = self._drain(timeout_s)
        if progressed:
            self._last_progress = time.monotonic()
            return True
        self._reap()
        if (self._outstanding()
                and time.monotonic() - self._last_progress
                > self.stall_timeout_s):
            raise WorkerCrashError(
                f"no worker progress for {self.stall_timeout_s:.0f}s "
                f"({self._outstanding()} tasks outstanding)")
        return False

    def wait(self, handle: BlockHandle,
             timeout_s: Optional[float] = None) -> BlockHandle:
        """Pump until *handle* completes (stall timeout still applies)."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while not handle.done:
            self.pump()
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"block {handle.block_id} incomplete after "
                    f"{timeout_s:.0f}s")
        return handle

    def _routable(self, entry: _Entry, wid: int) -> Optional[bool]:
        """Can *entry* run on *wid*?  None = unroutable anywhere."""
        if entry.kind in ("shard", "plant"):
            return True  # pure tasks run anywhere
        home = self._stream_homes.get(entry.task.stream)
        if entry.kind == "finish":
            return None if home is None else home == wid
        if home is not None:
            return home == wid
        # No home: only a self-contained task may seed one.
        return True if entry.task.self_contained else None

    def _dispatch(self) -> None:
        for wid in list(self._workers):
            if self._assigned.get(wid) is not None:
                continue
            if not self._workers[wid].is_alive():
                continue
            chosen = None
            for entry in list(self._pending):
                if entry.completed:
                    # Duplicate of a requeued-then-completed task.
                    self._pending.remove(entry)
                    continue
                ok = self._routable(entry, wid)
                if ok is None:
                    self._pending.remove(entry)
                    self._fail_entry(
                        entry, "stream state lost (home worker died)")
                    continue
                if ok:
                    chosen = entry
                    break
            if chosen is None:
                continue
            self._pending.remove(chosen)
            self._assigned[wid] = chosen
            if chosen.kind in ("stream", "finish"):
                self._stream_homes.setdefault(chosen.task.stream, wid)
            block = chosen.block
            if chosen.kind == "finish":
                self._inboxes[wid].put(("finish", chosen.task))
            else:
                self._inboxes[wid].put(
                    (chosen.kind, chosen.task,
                     block._f_shm.name, block._frames_shape,
                     block._o_shm.name, block._out_shape))

    def _drain(self, timeout_s: float) -> bool:
        from multiprocessing import connection as mp_connection

        pipes = list(self._outpipes.values())
        if not pipes:
            # Every pipe is down (workers mid-respawn after a mass
            # crash): sleep instead of busy-spinning the supervisor.
            time.sleep(min(max(timeout_s, 0.0), 0.05))
            return False
        progressed = False
        for conn in mp_connection.wait(pipes, timeout=timeout_s):
            wid = self._pipe_wid.get(conn)
            try:
                msg = conn.recv()
            except EOFError:
                # Worker gone; the reap pass requeues whatever it held.
                self._drop_pipe(wid)
                continue
            kind, src_wid, tid, payload = msg
            if kind == "error":
                raise WorkerCrashError(
                    f"worker {src_wid} failed task {tid}:\n{payload}")
            entry = self._active.get(tid)
            if entry is not None and not entry.completed:
                entry.completed = True
                del self._active[tid]
                if entry.kind == "finish":
                    # Stream closed: release its worker pinning.
                    self._stream_homes.pop(entry.task.stream, None)
                block = entry.block
                block.results[tid] = payload
                block._remaining -= 1
                if block._remaining == 0:
                    self._finalize_block(block)
                progressed = True
            if self._assigned.get(wid) is not None:
                self._assigned[wid] = None
        return progressed

    def _reap(self) -> None:
        """Repair dead workers: requeue/fail their work, respawn."""
        for wid in list(self._workers):
            proc = self._workers[wid]
            if proc.is_alive():
                continue
            entry = self._assigned.pop(wid, None)
            self._workers.pop(wid)
            self._inboxes.pop(wid)
            self._drop_pipe(wid)
            # Any stream homed here lost its replica state.
            for stream in [s for s, w in self._stream_homes.items()
                           if w == wid]:
                del self._stream_homes[stream]
            if entry is not None and not entry.completed:
                requeue = (entry.kind in ("shard", "plant")
                           or (entry.kind == "stream"
                               and entry.task.self_contained))
                if requeue:
                    self.stats.requeued_tasks += 1
                    self._pending.appendleft(_Entry(
                        dataclasses.replace(entry.task, crash=False),
                        entry.kind, entry.block))
                    self._active[entry.task.task_id] = self._pending[0]
                else:
                    self._fail_entry(
                        entry, "worker died holding stream state")
            # Hold capacity: a persistent pool replaces every casualty
            # (idle or busy); a run()-scoped pool replaces casualties
            # while work remains.  Either way the respawn counts
            # against the restart budget and refreshes the stall clock
            # (recovery is progress, not a hang).
            if self._persistent or self._outstanding():
                self.stats.worker_restarts += 1
                if self.stats.worker_restarts > self.max_restarts:
                    raise WorkerCrashError(
                        f"worker crash budget exhausted "
                        f"({self.max_restarts} restarts); last casualty "
                        f"was worker {wid}")
                self._spawn_worker()
                self._last_progress = time.monotonic()

    def _fail_entry(self, entry: _Entry, reason: str) -> None:
        entry.completed = True
        self._active.pop(entry.task.task_id, None)
        block = entry.block
        block.failed.append(entry.task)
        block._remaining -= 1
        if block._remaining == 0:
            self._finalize_block(block)

    def _finalize_block(self, block: BlockHandle) -> None:
        if block._o_shm is not None:
            block.outputs = np.array(
                np.ndarray(block._out_shape, dtype=np.float64,
                           buffer=block._o_shm.buf),
                copy=True)
        self._release_block_shm(block)
        r0, q0 = block._stats0
        block.stats = PoolStats(
            workers=self.n_workers,
            worker_restarts=self.stats.worker_restarts - r0,
            requeued_tasks=self.stats.requeued_tasks - q0,
        )
        block.done = True
        self._blocks = [b for b in self._blocks if not b.done]

    def _release_block_shm(self, block: BlockHandle) -> None:
        for shm in (block._f_shm, block._o_shm):
            if shm is not None:
                shm.close()
                shm.unlink()
        block._f_shm = None
        block._o_shm = None

    # -- one-shot compatibility path -----------------------------------
    def run(self, frames: np.ndarray, tasks: List[ShardTask],
            ) -> Tuple[List[TaskResult], np.ndarray, PoolStats]:
        """Execute *tasks* over *frames*; returns (results, outputs, stats).

        Results come back ordered by ``task_id``; ``outputs`` is the
        assembled ``(n_frames, len(OUTPUT_COLUMNS))`` matrix.  On an
        unstarted pool this spawns workers for the call and tears them
        down after (the pre-daemon behaviour); on a started pool it
        reuses the live, warm workers and ``stats`` is the per-call
        delta of the cumulative pool counters.
        """
        owns = not self._started
        if owns:
            self._persistent = False
            self._start(min(self.n_workers, max(len(tasks), 1)))
        try:
            handle = self.submit(frames, list(tasks))
            self.wait(handle)
            if handle.failed:  # pragma: no cover - shard tasks requeue
                raise WorkerCrashError(
                    f"{len(handle.failed)} tasks failed unrecoverably")
            ordered = [handle.results[t.task_id] for t in tasks]
            return ordered, handle.outputs, handle.stats
        finally:
            if owns:
                self.close()
