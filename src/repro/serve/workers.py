"""Shard execution: runtime replicas, worker processes, crash recovery.

The execution layer under :class:`~repro.serve.farm.ShardedNodeFarm`:

* :class:`FarmSpec` — a picklable recipe for one runtime replica
  (model + fallback + :class:`~repro.core.api.RuntimeConfig` +
  :class:`~repro.obs.ObsConfig`).  Every replica is built from a
  pickle round-trip of the spec's models, so the in-process reference
  constructs *exactly* what a spawned worker deserialises — sharing no
  mutable state with the parent either way.
* :class:`ShardTask` / :class:`TaskResult` — one self-contained unit of
  work (a shard's frames plus its micro-batch plan) and everything it
  produced (records, health, per-shard obs snapshot).  Tasks are
  **pure**: re-executing one from scratch yields bit-identical results,
  which is what makes crash-requeue provably safe.
* :func:`execute_shard_task` — the single execution path shared by the
  in-process reference and the worker processes.
* :class:`WorkerPool` — a ``multiprocessing`` (spawn) pool with
  shared-memory frame/output buffers, per-worker task inboxes, crash
  detection via liveness polling, worker restart and task requeue.

Frames travel to workers through one :class:`SharedMemory` block and
per-frame numeric outputs come back through another (score, machine
code, latency breakdown, status code, publish flag — see
:data:`OUTPUT_COLUMNS`); the rich :class:`FrameRecord` stream returns
through a **per-worker result pipe**.  One pipe per worker — never a
queue shared between workers — is load-bearing for crash recovery:
``multiprocessing.Queue.put`` hands the payload to a feeder thread
that flushes it while holding a write lock *shared by every writer*,
so a worker that hard-exits moments after a put can die inside that
critical section and silently deadlock all surviving writers.  A pipe
has exactly one writer and no shared lock, so a crashing worker can
only ever poison its own channel, and results it flushed before dying
are still delivered ahead of the EOF that signals the crash.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import ObsConfig, Observability
from repro.serve.sharding import shard_seed
from repro.soc.runtime import (
    STATUS_CORRUPT,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_STALE,
    STATUS_WATCHDOG,
    CentralNodeRuntime,
    FrameRecord,
)

__all__ = [
    "FarmSpec",
    "ShardTask",
    "TaskResult",
    "WorkerCrashError",
    "WorkerPool",
    "execute_shard_task",
    "OUTPUT_COLUMNS",
    "STATUS_CODES",
]

#: Status → numeric code for the shared-memory output buffer.
STATUS_CODES: Tuple[str, ...] = (STATUS_OK, STATUS_DEGRADED, STATUS_STALE,
                                 STATUS_CORRUPT, STATUS_WATCHDOG)

#: Columns of the per-frame output row a worker writes into shared
#: memory (float64 each).  ``machine`` is the index into the
#: controller's ``machine_names`` (-1 = no trip); ``status`` indexes
#: :data:`STATUS_CODES`.
OUTPUT_COLUMNS: Tuple[str, ...] = ("score", "machine", "total_latency_s",
                                   "node_latency_s", "hub_delay_s",
                                   "status", "published")


@dataclass(frozen=True)
class FarmSpec:
    """Picklable recipe for one shard's runtime replica.

    ``model``/``fallback`` may be float :class:`~repro.nn.Model`\\ s or
    converted :class:`~repro.hls.HLSModel`\\ s — they pass through
    :func:`repro.core.api.build_runtime`, which converts and compiles
    per ``config.compile_level``.  ``obs`` being non-None gives every
    replica its *own* observability bundle; the farm merges the
    per-shard snapshots afterwards (:mod:`repro.serve.merge`).

    ``injector`` arms every replica with the same
    :class:`~repro.soc.faults.FaultInjector` recipe (specs + seed);
    schedules are a pure function of (seed, spec, frame index), so each
    shard's chaos is identical no matter which worker runs it, and the
    runtime's speculative ladder keeps the batched fast path live under
    the armed injector.
    """

    model: Any
    fallback: Any = None
    config: Any = None          # RuntimeConfig (default built lazily)
    obs: Optional[ObsConfig] = None
    injector: Any = None        # FaultInjector (stateless, picklable)

    def build_runtime(self) -> CentralNodeRuntime:
        """A fresh, fully private runtime replica.

        The models are pickle round-tripped so replicas built in this
        process share nothing with the spec (or each other) — the exact
        object graph a spawned worker gets off the wire.
        """
        from repro.core.api import RuntimeConfig, build_runtime

        model = pickle.loads(pickle.dumps(self.model))
        fallback = (pickle.loads(pickle.dumps(self.fallback))
                    if self.fallback is not None else None)
        injector = (pickle.loads(pickle.dumps(self.injector))
                    if self.injector is not None else None)
        return build_runtime(
            model,
            fallback=fallback,
            config=self.config or RuntimeConfig(),
            obs=Observability.from_config(self.obs),
            injector=injector,
        )


@dataclass(frozen=True)
class ShardTask:
    """One shard's complete, self-contained unit of work.

    ``global_indices`` are the shard's frames (arrival order) in the
    shared frame buffer; ``batches`` is the micro-batch plan as
    half-open ranges over those indices.  ``crash`` is a test hook: a
    worker claiming a crash-flagged task dies hard before executing it
    (the supervisor requeues it with the flag cleared).
    """

    task_id: int
    shard: int
    seed_entropy: Optional[int]
    global_indices: Tuple[int, ...]
    batches: Tuple[Tuple[int, int], ...]
    crash: bool = False


@dataclass
class TaskResult:
    """Everything one executed shard task produced."""

    task_id: int
    shard: int
    records: List[FrameRecord]
    health: Dict[str, Any]
    obs_snapshot: Optional[Dict[str, Any]] = None


class WorkerCrashError(RuntimeError):
    """The pool exhausted its restart budget (or lost all workers)."""


# ----------------------------------------------------------------------
# Task execution (shared by the inline reference and worker processes)
# ----------------------------------------------------------------------
def _machine_code(runtime: CentralNodeRuntime, machine) -> float:
    if machine is None:
        return -1.0
    return float(runtime.controller.machine_names.index(machine))


def execute_shard_task(spec: FarmSpec, task: ShardTask, frames: np.ndarray,
                       out: Optional[np.ndarray] = None) -> TaskResult:
    """Run one shard task on a fresh replica; optionally fill *out*.

    *frames* is the **global** frame block; the task's own indices
    select the shard's slice.  *out* (when given) is the global
    ``(n_frames, len(OUTPUT_COLUMNS))`` output buffer; the task writes
    exactly its own rows.  Pure: no state survives the call except the
    returned :class:`TaskResult` and the output rows.
    """
    runtime = spec.build_runtime()
    seed = shard_seed(task.seed_entropy, task.shard)
    local = frames[np.asarray(task.global_indices, dtype=np.intp)]
    records: List[FrameRecord] = []
    for a, b in task.batches:
        records.extend(runtime.run(local[a:b], seed=seed))
    if len(records) != len(task.global_indices):
        raise AssertionError(
            f"shard {task.shard}: {len(records)} records for "
            f"{len(task.global_indices)} frames")
    if out is not None:
        for g, r in zip(task.global_indices, records):
            out[g, :] = (
                float(r.decision.score),
                _machine_code(runtime, r.decision.machine),
                float(r.total_latency_s),
                float(r.node_latency_s),
                float(r.hub_delay_s),
                float(STATUS_CODES.index(r.status)),
                1.0 if r.published else 0.0,
            )
    obs_snapshot = (runtime.obs.snapshot(runtime=runtime)
                    if runtime.obs is not None else None)
    return TaskResult(
        task_id=task.task_id,
        shard=task.shard,
        records=records,
        health=dataclasses.asdict(runtime.health_report()),
        obs_snapshot=obs_snapshot,
    )


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _attach_shm(name: str):
    """Attach an existing SharedMemory block.

    Spawn children share the parent's resource-tracker process, whose
    name cache is a set — the attach-side ``register`` this interpreter
    performs is therefore a no-op duplicate, and the parent's
    ``unlink`` retires the single entry.  (Do **not** ``unregister``
    here: that would strip the parent's entry and make its unlink
    complain about an unknown name.)
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_main(worker_id: int, spec: FarmSpec, inbox, results,
                 frames_shm: str, frames_shape, out_shm: str,
                 out_shape) -> None:
    """Worker loop: pull shard tasks until the ``None`` sentinel.

    *results* is this worker's private end of a one-writer pipe —
    ``send`` completes synchronously in this thread, so once a task's
    result is on the wire no later crash can retract or block it.
    """
    f_shm = _attach_shm(frames_shm)
    o_shm = _attach_shm(out_shm)
    try:
        frames = np.ndarray(frames_shape, dtype=np.float64,
                            buffer=f_shm.buf)
        out = np.ndarray(out_shape, dtype=np.float64, buffer=o_shm.buf)
        while True:
            task = inbox.get()
            if task is None:
                break
            if task.crash:
                # Test hook: die hard (no cleanup, no result) so the
                # supervisor exercises real crash detection.
                os._exit(13)
            result = execute_shard_task(spec, task, frames, out)
            results.send(("done", worker_id, task.task_id, result))
    finally:
        results.close()
        f_shm.close()
        o_shm.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Supervisor bookkeeping of one :meth:`WorkerPool.run`."""

    workers: int = 0
    worker_restarts: int = 0
    requeued_tasks: int = 0


class WorkerPool:
    """Spawn-based worker pool with crash detection and task requeue.

    Parameters
    ----------
    spec:
        The replica recipe shipped to every worker once (at spawn).
    n_workers:
        Processes kept alive while work remains.
    start_method:
        ``multiprocessing`` start method; the default ``spawn`` is the
        only one that never inherits parent state (determinism) and
        works identically everywhere.
    max_restarts:
        Crash budget; exceeding it raises :class:`WorkerCrashError`
        (a farm that cannot hold its workers must fail loudly).
    stall_timeout_s:
        Maximum wall time with no completed task and no detected crash
        before the pool gives up (guards CI against silent hangs).
    """

    def __init__(self, spec: FarmSpec, n_workers: int, *,
                 start_method: str = "spawn", max_restarts: int = 8,
                 stall_timeout_s: float = 300.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.spec = spec
        self.n_workers = n_workers
        self.start_method = start_method
        self.max_restarts = max_restarts
        self.stall_timeout_s = stall_timeout_s

    # ------------------------------------------------------------------
    def run(self, frames: np.ndarray, tasks: List[ShardTask],
            ) -> Tuple[List[TaskResult], np.ndarray, PoolStats]:
        """Execute *tasks* over *frames*; returns (results, outputs, stats).

        Results come back ordered by ``task_id``; ``outputs`` is the
        assembled ``(n_frames, len(OUTPUT_COLUMNS))`` matrix from the
        shared output buffer.
        """
        import multiprocessing as mp
        from multiprocessing import connection as mp_connection
        from multiprocessing import shared_memory

        frames = np.ascontiguousarray(frames, dtype=np.float64)
        n = frames.shape[0]
        out_shape = (n, len(OUTPUT_COLUMNS))
        ctx = mp.get_context(self.start_method)
        stats = PoolStats(workers=self.n_workers)

        f_shm = shared_memory.SharedMemory(
            create=True, size=max(frames.nbytes, 8))
        o_shm = shared_memory.SharedMemory(
            create=True, size=max(8 * n * len(OUTPUT_COLUMNS), 8))
        try:
            shm_frames = np.ndarray(frames.shape, dtype=np.float64,
                                    buffer=f_shm.buf)
            shm_frames[...] = frames
            shm_out = np.ndarray(out_shape, dtype=np.float64,
                                 buffer=o_shm.buf)
            shm_out[...] = np.nan

            workers: Dict[int, Any] = {}
            inboxes: Dict[int, Any] = {}
            outpipes: Dict[int, Any] = {}   # wid -> parent recv end
            pipe_wid: Dict[Any, int] = {}
            assigned: Dict[int, Optional[ShardTask]] = {}
            next_wid = 0

            def spawn_worker():
                nonlocal next_wid
                wid = next_wid
                next_wid += 1
                inbox = ctx.Queue()
                r_recv, r_send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(wid, self.spec, inbox, r_send,
                          f_shm.name, frames.shape, o_shm.name, out_shape),
                    daemon=True,
                )
                proc.start()
                # Drop the parent's copy of the send end so the pipe
                # hits EOF the instant its (sole) worker dies.
                r_send.close()
                workers[wid] = proc
                inboxes[wid] = inbox
                outpipes[wid] = r_recv
                pipe_wid[r_recv] = wid
                assigned[wid] = None
                return wid

            def drop_pipe(wid: int) -> None:
                conn = outpipes.pop(wid, None)
                if conn is not None:
                    pipe_wid.pop(conn, None)
                    conn.close()

            for _ in range(min(self.n_workers, max(len(tasks), 1))):
                spawn_worker()

            pending = list(tasks)
            done: Dict[int, TaskResult] = {}
            last_progress = time.monotonic()
            try:
                while len(done) < len(tasks):
                    # Dispatch to idle workers (skip tasks a crashed
                    # worker's duplicate already completed).
                    for wid in list(workers):
                        if assigned[wid] is None and pending:
                            task = pending.pop(0)
                            if task.task_id in done:
                                continue
                            assigned[wid] = task
                            inboxes[wid].put(task)
                    # Drain every ready result pipe (bounded wait; a
                    # pipe is also "ready" at EOF, i.e. worker death —
                    # buffered results are delivered before the EOF).
                    progressed = False
                    for conn in mp_connection.wait(list(outpipes.values()),
                                                   timeout=0.05):
                        wid = pipe_wid[conn]
                        try:
                            kind, _src, tid, payload = conn.recv()
                        except EOFError:
                            # Worker gone; let the liveness pass below
                            # requeue whatever it was holding.
                            drop_pipe(wid)
                            continue
                        if kind == "done" and tid not in done:
                            done[tid] = payload
                        if wid in assigned:
                            assigned[wid] = None
                        progressed = True
                    if progressed:
                        last_progress = time.monotonic()
                        continue
                    # Liveness: requeue the in-flight task of any dead
                    # worker and replace the worker.
                    for wid in list(workers):
                        proc = workers[wid]
                        if proc.is_alive():
                            continue
                        task = assigned.pop(wid)
                        workers.pop(wid)
                        inboxes.pop(wid)
                        drop_pipe(wid)
                        if task is not None and task.task_id not in done:
                            stats.worker_restarts += 1
                            stats.requeued_tasks += 1
                            if stats.worker_restarts > self.max_restarts:
                                raise WorkerCrashError(
                                    f"worker crash budget exhausted "
                                    f"({self.max_restarts} restarts); "
                                    f"last casualty held shard "
                                    f"{task.shard}")
                            pending.insert(
                                0, dataclasses.replace(task, crash=False))
                            spawn_worker()
                            last_progress = time.monotonic()
                        elif len(done) < len(tasks) and not workers:
                            # Idle worker died with work remaining:
                            # keep the pool at least one strong.
                            stats.worker_restarts += 1
                            spawn_worker()
                    if (time.monotonic() - last_progress
                            > self.stall_timeout_s):
                        raise WorkerCrashError(
                            f"no worker progress for "
                            f"{self.stall_timeout_s:.0f}s "
                            f"({len(done)}/{len(tasks)} tasks done)")
            finally:
                for wid, inbox in inboxes.items():
                    try:
                        inbox.put(None)
                    except Exception:  # pragma: no cover - defensive
                        pass
                for proc in workers.values():
                    proc.join(timeout=5.0)
                    if proc.is_alive():  # pragma: no cover - defensive
                        proc.terminate()
                        proc.join(timeout=1.0)
                for wid in list(outpipes):
                    drop_pipe(wid)

            outputs = np.array(shm_out, copy=True)
        finally:
            f_shm.close()
            f_shm.unlink()
            o_shm.close()
            o_shm.unlink()
        ordered = [done[t.task_id] for t in tasks]
        return ordered, outputs, stats
