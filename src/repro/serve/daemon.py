"""``repro.serve.daemon`` — the persistent async serving front-end.

Architecture (one process, three concurrency domains):

* **asyncio event loop** — accepts many concurrent client connections
  (:mod:`repro.serve.protocol` framing), runs per-stream admission
  control + micro-batching (:class:`StreamIngress`, sans-io so the
  deterministic parts are unit-testable without sockets), and awaits
  batch completions.
* **one pool-driver thread** (:class:`_PoolDriver`) — the *only* owner
  of the started :class:`~repro.serve.workers.WorkerPool`: it
  serialises submissions, pumps supervision (crash detection, respawn,
  requeue), and resolves futures the event loop awaits.  Single
  ownership means no pool state is ever touched from two threads.
* **persistent worker processes** — spawned once, each holding a warm
  :class:`~repro.serve.workers.ReplicaSource` and the live per-stream
  runtime replicas (stream → worker affinity lives in the pool).

Determinism contract — the daemon extension of docs/serving.md:

* Batch boundaries are a pure function of each stream's *accepted*
  frame sequence: the ingress clock is ``accepted_index * period_s``
  (``"stream"`` mode) or all-zeros (``"backlog"`` mode), never wall
  time.  Two runs that accept the same frames produce the same
  batches, seeds, and records.
* Each stream is served by one persistent runtime replica fed its
  batches in order — exactly the sequential reference
  (:func:`serve_streams_reference`) — so concurrent streams are
  bit-identical to serving each stream alone.
* Crash recovery replays: when a stream's home worker dies, the next
  batch ships the stream's full accepted history
  (``StreamTask.replay_batches``); the fresh replica re-runs history
  batch-by-batch and lands in the lost state bit-exactly.  The daemon
  retains accepted frames per stream for this (the documented memory
  cost of a crash-survivable stream).
* Shedding is *admission-time*: a refused frame never enters the
  stream, so the accepted subsequence — and therefore every record —
  is exactly what a client that never sent the shed frames would get.
  Shed counts are reported in ``FarmHealth.frames_shed`` and the
  ``serve.frames_shed`` counter of the merged ``repro-obs/1`` export.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import queue as queue_mod
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batching import (
    BatchingPolicy,
    MicroBatcher,
    backlog_arrivals,
    plan_microbatches,
    stream_arrivals,
)
from repro.serve.health import FarmHealth, merge_shard_health
from repro.serve.merge import merge_obs_snapshots
from repro.serve.protocol import (
    ASSIGN_STREAM,
    MessageDecoder,
    MsgKind,
    ProtocolError,
    SERVE_PROTO_VERSION,
    StreamClient,
    pack_eos,
    pack_error,
    pack_result,
    pack_shed,
    pack_welcome,
    unpack_frame,
    unpack_hello,
)
from repro.serve.sharding import shard_seed
from repro.serve.workers import (
    OUTPUT_COLUMNS,
    FarmSpec,
    StreamFinish,
    StreamTask,
    TaskResult,
    WorkerPool,
    output_row_writer,
)
from repro.soc.board import FRAME_PERIOD_S
from repro.soc.runtime import FrameRecord

__all__ = [
    "StreamIngress",
    "ServingDaemon",
    "DaemonHandle",
    "DaemonReport",
    "ReferenceStream",
    "serve_streams_reference",
]

#: Recognised ingress arrival models (same semantics as the farm's).
ARRIVAL_MODES = ("stream", "backlog")


def _spec_n_monitors(spec: FarmSpec) -> int:
    """Monitors per frame, from the spec's model (0 = unknown)."""
    model = spec.model
    shape = getattr(model, "input_shape", None)
    if shape is None:
        inputs = getattr(model, "inputs", None)
        if inputs:
            shape = getattr(inputs[0], "shape", None)
    if shape is None:
        return 0
    try:
        return int(np.prod(tuple(shape)))
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return 0


# ----------------------------------------------------------------------
# Sans-io per-stream admission + batching
# ----------------------------------------------------------------------
class StreamIngress:
    """Admission control + micro-batching for one stream (sans-io).

    Deterministic by construction: :meth:`offer` decides shed-or-accept
    from the queue depth (``accepted - completed`` vs ``queue_limit``)
    and stamps accepted frames on the simulated arrival clock
    (``accepted_index * period_s``), so given the same sequence of
    ``offer``/``mark_completed`` calls the accepted set, the batch
    boundaries, and the shed count are all reproducible — which is how
    the overload tests pin shedding exactly, with no sockets involved.
    """

    def __init__(self, stream_id: int, *,
                 policy: Optional[BatchingPolicy] = None,
                 period_s: float = FRAME_PERIOD_S,
                 queue_limit: int = 64,
                 arrival_mode: str = "stream"):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if arrival_mode not in ARRIVAL_MODES:
            raise ValueError(f"arrival_mode must be one of {ARRIVAL_MODES}, "
                             f"got {arrival_mode!r}")
        self.stream_id = stream_id
        self.policy = policy or BatchingPolicy()
        self.period_s = period_s
        self.queue_limit = queue_limit
        self.arrival_mode = arrival_mode
        self.frames: List[np.ndarray] = []   # accepted, stream-local order
        self.ready: Deque[Tuple[int, int]] = deque()
        self.accepted = 0
        self.completed = 0
        self.shed = 0
        self.ended = False
        self._batcher = MicroBatcher(self.policy)

    @property
    def queue_depth(self) -> int:
        """Accepted frames not yet completed (in queue or in flight)."""
        return self.accepted - self.completed

    def offer(self, frame: np.ndarray) -> bool:
        """Admit or shed one frame; True when accepted."""
        if self.ended or self.queue_depth >= self.queue_limit:
            self.shed += 1
            return False
        t = (0.0 if self.arrival_mode == "backlog"
             else self.accepted * self.period_s)
        flushed = self._batcher.push(t)
        if flushed is not None:
            self.ready.append(flushed)
        self.frames.append(np.asarray(frame, dtype=np.float64))
        self.accepted += 1
        return True

    def end(self) -> None:
        """End of stream: flush the tail batch, refuse further frames."""
        if self.ended:
            return
        self.ended = True
        tail = self._batcher.flush()
        if tail is not None:
            self.ready.append(tail)

    def next_ready(self) -> Optional[Tuple[int, int]]:
        return self.ready.popleft() if self.ready else None

    def mark_completed(self, n: int) -> None:
        self.completed += n

    @property
    def drained(self) -> bool:
        """Ended, nothing queued, nothing in flight."""
        return self.ended and not self.ready and self.completed == self.accepted


# ----------------------------------------------------------------------
# Pool driver thread
# ----------------------------------------------------------------------
class _PoolDriver(threading.Thread):
    """Single thread owning the started pool; resolves submit futures.

    The event loop never touches the pool directly (except the
    read-only ``stream_home`` peek, whose staleness is self-correcting:
    a wrong guess fails the block and the daemon retries with replay).
    """

    def __init__(self, pool: WorkerPool):
        super().__init__(daemon=True, name="repro-serve-pool")
        self.pool = pool
        self.error: Optional[BaseException] = None
        self._inbox: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        self._live: List[Tuple[Any, concurrent.futures.Future]] = []
        self._stopping = threading.Event()

    def submit(self, frames: np.ndarray,
               tasks: Sequence[Any]) -> concurrent.futures.Future:
        fut: concurrent.futures.Future = concurrent.futures.Future()
        if self.error is not None:
            fut.set_exception(self.error)
            return fut
        self._inbox.put((frames, tasks, fut))
        return fut

    def stop(self) -> None:
        self._stopping.set()

    def run(self) -> None:
        try:
            self.pool.start()
            while True:
                try:
                    item = self._inbox.get(
                        timeout=0.002 if self._live else 0.05)
                except queue_mod.Empty:
                    item = None
                if item is not None:
                    frames, tasks, fut = item
                    try:
                        handle = self.pool.submit(frames, tasks)
                    except BaseException as exc:
                        fut.set_exception(exc)
                    else:
                        self._live.append((handle, fut))
                self.pool.pump(0.02)
                if self._live:
                    still = []
                    for handle, fut in self._live:
                        if handle.done:
                            fut.set_result(handle)
                        else:
                            still.append((handle, fut))
                    self._live = still
                if (self._stopping.is_set() and not self._live
                        and self._inbox.empty()):
                    return
        except BaseException as exc:
            self.error = exc
            for _handle, fut in self._live:
                if not fut.done():
                    fut.set_exception(exc)
            self._live = []
            while True:
                try:
                    _f, _t, fut = self._inbox.get_nowait()
                except queue_mod.Empty:
                    break
                if not fut.done():
                    fut.set_exception(exc)
        finally:
            self.pool.close()


# ----------------------------------------------------------------------
# Daemon
# ----------------------------------------------------------------------
@dataclass
class DaemonReport:
    """Final accounting of one daemon epoch (between start and drain)."""

    health: FarmHealth
    obs: Optional[Dict[str, Any]]
    streams: int
    frames_total: int
    frames_shed: int
    batches: int
    worker_restarts: int
    requeued_tasks: int


class _Stream:
    __slots__ = ("sid", "ingress", "writer", "seqs", "history",
                 "inflight", "last_health", "obs_snapshot", "drained",
                 "failed")

    def __init__(self, sid: int, ingress: StreamIngress, writer):
        self.sid = sid
        self.ingress = ingress
        self.writer = writer
        self.seqs: List[int] = []        # client seq per accepted frame
        self.history: List[Tuple[int, int]] = []   # completed batches
        self.inflight = False
        self.last_health: Dict[str, Any] = {}
        self.obs_snapshot: Optional[Dict[str, Any]] = None
        self.drained = asyncio.Event()
        self.failed: Optional[BaseException] = None


class ServingDaemon:
    """Persistent asyncio serving front over a warm worker pool.

    Lifecycle: ``await start()`` spawns the pool (in its driver thread)
    and begins listening; clients connect, HELLO a stream id, and
    stream frames; ``await drain()`` stops admission, flushes every
    accepted frame, and returns the epoch's :class:`DaemonReport`;
    ``await reload()`` drains and then swaps in a fresh pool (same or
    new spec) without dropping the listener; ``await stop()`` drains
    and tears everything down.  Synchronous callers use
    :class:`DaemonHandle`.
    """

    def __init__(self, spec: FarmSpec, *, workers: int = 4,
                 batching: Optional[BatchingPolicy] = None,
                 seed: Optional[int] = 0,
                 queue_limit: int = 64,
                 arrival_mode: str = "stream",
                 host: str = "127.0.0.1", port: int = 0,
                 max_restarts: int = 32,
                 pool_kwargs: Optional[Dict[str, Any]] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if arrival_mode not in ARRIVAL_MODES:
            raise ValueError(f"arrival_mode must be one of {ARRIVAL_MODES}, "
                             f"got {arrival_mode!r}")
        self.spec = spec
        self.workers = workers
        self.batching = batching or BatchingPolicy()
        self.seed = seed
        self.queue_limit = queue_limit
        self.arrival_mode = arrival_mode
        self.host = host
        self.port = port
        self.max_restarts = max_restarts
        self.pool_kwargs = dict(pool_kwargs or {})
        self.n_monitors = _spec_n_monitors(spec)
        self._streams: Dict[int, _Stream] = {}
        self._retired: List[_Stream] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._driver: Optional[_PoolDriver] = None
        self._pool: Optional[WorkerPool] = None
        self._tasks: set = set()
        self._next_tid = 0
        self._next_auto_sid = 0
        self._draining = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def period_s(self) -> float:
        cfg = self.spec.config
        return cfg.period_s if cfg is not None else FRAME_PERIOD_S

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "ServingDaemon":
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._start_pool()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port)
        return self

    def _start_pool(self) -> None:
        self._pool = WorkerPool(self.spec, self.workers,
                                max_restarts=self.max_restarts,
                                **self.pool_kwargs)
        self._driver = _PoolDriver(self._pool)
        self._driver.start()

    async def drain(self) -> DaemonReport:
        """Stop admission, flush all accepted frames, report the epoch.

        Every frame accepted before the drain is still executed and its
        result delivered; frames arriving during the drain are shed.
        Idempotent per epoch (a second drain reports the same totals).
        """
        self._draining = True
        streams = list(self._streams.values())
        for s in streams:
            s.ingress.end()
            self._maybe_dispatch(s)
        for s in streams:
            await s.drained.wait()
        for s in streams:
            if s.failed is not None:
                raise s.failed
        await self._finish_streams(streams)
        return self._report(streams + self._retired)

    async def reload(self, spec: Optional[FarmSpec] = None) -> DaemonReport:
        """Drain, then swap in a fresh pool (optionally a new spec).

        The listener stays up throughout; live client connections are
        closed after their results are delivered (clients reconnect to
        the new epoch).  Stream ids may be reused after the reload.
        """
        report = await self.drain()
        for s in list(self._streams.values()):
            if s.writer is not None:
                try:
                    s.writer.close()
                except Exception:  # pragma: no cover - defensive
                    pass
        driver = self._driver
        driver.stop()
        await asyncio.get_running_loop().run_in_executor(None, driver.join)
        if spec is not None:
            self.spec = spec
            self.n_monitors = _spec_n_monitors(spec)
        self._streams.clear()
        self._retired = []
        self._start_pool()
        self._draining = False
        return report

    async def stop(self) -> DaemonReport:
        """Drain, close the listener, tear down the pool."""
        report = await self.drain()
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for s in list(self._streams.values()):
            if s.writer is not None:
                try:
                    s.writer.close()
                except Exception:  # pragma: no cover - defensive
                    pass
        driver = self._driver
        driver.stop()
        await asyncio.get_running_loop().run_in_executor(None, driver.join)
        return report

    # -- per-connection handler ----------------------------------------
    def _allocate_sid(self, requested: int) -> Optional[int]:
        if requested != ASSIGN_STREAM:
            if requested in self._streams:
                return None
            return requested
        while self._next_auto_sid in self._streams:
            self._next_auto_sid += 1
        sid = self._next_auto_sid
        self._next_auto_sid += 1
        return sid

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        decoder = MessageDecoder()
        stream: Optional[_Stream] = None
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # RESULT messages go out per frame; Nagle would park each
            # one behind the previous unACKed write for up to a
            # delayed-ACK interval.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                try:
                    decoder.feed(data)
                    msgs = list(decoder)
                except ProtocolError as exc:
                    writer.write(pack_error(f"protocol error: {exc}"))
                    await writer.drain()
                    break
                for kind, payload in msgs:
                    if kind == MsgKind.HELLO:
                        try:
                            version, requested = unpack_hello(payload)
                        except ProtocolError as exc:
                            writer.write(pack_error(str(exc)))
                            await writer.drain()
                            return
                        if version != SERVE_PROTO_VERSION:
                            # Application-level refusal, not a framing
                            # violation: a too-new client gets a clean
                            # ERROR + close instead of decoder poison.
                            writer.write(pack_error(
                                f"unsupported repro-serve protocol "
                                f"version {version} (server speaks "
                                f"{SERVE_PROTO_VERSION})"))
                            await writer.drain()
                            return
                        if stream is not None:
                            writer.write(pack_error("duplicate HELLO"))
                            await writer.drain()
                            return
                        if self._draining or self._closed:
                            writer.write(pack_error("daemon is draining"))
                            await writer.drain()
                            return
                        sid = self._allocate_sid(requested)
                        if sid is None:
                            writer.write(pack_error(
                                "stream id already in use"))
                            await writer.drain()
                            return
                        ingress = StreamIngress(
                            sid, policy=self.batching,
                            period_s=self.period_s,
                            queue_limit=self.queue_limit,
                            arrival_mode=self.arrival_mode)
                        stream = _Stream(sid, ingress, writer)
                        self._streams[sid] = stream
                        writer.write(pack_welcome(sid, self.n_monitors))
                        await writer.drain()
                        continue
                    if stream is None:
                        writer.write(pack_error("HELLO required first"))
                        await writer.drain()
                        return
                    if kind == MsgKind.FRAME:
                        try:
                            seq, vec = unpack_frame(payload)
                        except ProtocolError as exc:
                            writer.write(pack_error(str(exc)))
                            await writer.drain()
                            return
                        if self.n_monitors and len(vec) != self.n_monitors:
                            writer.write(pack_error(
                                f"frame has {len(vec)} samples, stream "
                                f"expects {self.n_monitors}"))
                            await writer.drain()
                            return
                        if self._draining or not stream.ingress.offer(vec):
                            if self._draining:
                                stream.ingress.shed += 1
                            writer.write(pack_shed(seq))
                            await writer.drain()
                            continue
                        stream.seqs.append(seq)
                        self._maybe_dispatch(stream)
                    elif kind == MsgKind.EOS:
                        stream.ingress.end()
                        self._maybe_dispatch(stream)
                        await stream.drained.wait()
                        if stream.failed is not None:
                            writer.write(pack_error(
                                f"stream failed: {stream.failed}"))
                        else:
                            writer.write(pack_eos())
                        await writer.drain()
                        return
                    else:
                        writer.write(pack_error(
                            f"unexpected {kind.name} from client"))
                        await writer.drain()
                        return
        finally:
            if stream is not None:
                # Disconnect without EOS: accepted frames still run to
                # completion (drain must lose nothing), results are
                # discarded at the dead socket.
                stream.ingress.end()
                stream.writer = None
                self._maybe_dispatch(stream)
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    # -- batch dispatch ------------------------------------------------
    def _maybe_dispatch(self, s: _Stream) -> None:
        if s.failed is not None:
            s.drained.set()
            return
        if not s.inflight:
            nxt = s.ingress.next_ready()
            if nxt is not None:
                s.inflight = True
                task = asyncio.get_running_loop().create_task(
                    self._run_batch(s, *nxt))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                return
        if s.ingress.drained and not s.inflight:
            s.drained.set()

    async def _run_batch(self, s: _Stream, a: int, b: int) -> None:
        try:
            rows, result = await self._execute_batch(s, a, b)
            s.history.append((a, b))
            s.last_health = result.health
            s.ingress.mark_completed(b - a)
            if s.writer is not None:
                try:
                    for i, seq in enumerate(s.seqs[a:b]):
                        s.writer.write(pack_result(seq, rows[i]))
                    await s.writer.drain()
                except (ConnectionError, RuntimeError):
                    s.writer = None
        except BaseException as exc:
            s.failed = exc
        finally:
            s.inflight = False
            self._maybe_dispatch(s)

    async def _execute_batch(self, s: _Stream, a: int,
                             b: int) -> Tuple[np.ndarray, TaskResult]:
        new = np.asarray(s.ingress.frames[a:b], dtype=np.float64)
        attempts = 0
        while True:
            # Peek the stream's home; a stale answer only costs one
            # failed block (the pool fails unroutable continuations
            # back instead of guessing, and we retry with replay).
            need_replay = a > 0 and self._pool.stream_home(s.sid) is None
            if need_replay:
                frames_block = np.concatenate(
                    [np.asarray(s.ingress.frames[:a], dtype=np.float64),
                     new])
                replay = tuple(s.history)
            else:
                frames_block = new
                replay = ()
            task = StreamTask(
                task_id=self._alloc_tid(),
                stream=s.sid,
                seed_entropy=self.seed,
                start=a,
                n_frames=b - a,
                replay_batches=replay,
            )
            fut = self._driver.submit(frames_block, [task])
            handle = await asyncio.wrap_future(fut)
            if not handle.failed:
                return handle.outputs, handle.results[task.task_id]
            attempts += 1
            if attempts > 2:
                raise RuntimeError(
                    f"stream {s.sid}: batch ({a}, {b}) failed "
                    f"{attempts} times (home worker kept dying)")

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- reporting -----------------------------------------------------
    async def _finish_streams(self, streams: List[_Stream]) -> None:
        """Collect final health/obs snapshots, dropping worker state."""
        pending = []
        for s in streams:
            if not s.history or s.obs_snapshot is not None:
                continue
            task = StreamFinish(task_id=self._alloc_tid(), stream=s.sid)
            fut = self._driver.submit(
                np.empty((0, 1), dtype=np.float64), [task])
            pending.append((s, task, fut))
        for s, task, fut in pending:
            handle = await asyncio.wrap_future(fut)
            if handle.failed:
                # Home died after its last batch; keep the last
                # per-batch health (cumulative anyway), lose the obs
                # snapshot for this stream.
                continue
            result = handle.results[task.task_id]
            if result.health:
                s.last_health = result.health
            s.obs_snapshot = result.obs_snapshot

    def _report(self, streams: List[_Stream]) -> DaemonReport:
        streams = sorted(streams, key=lambda s: s.sid)
        shard_health = [s.last_health for s in streams if s.last_health]
        frames_total = sum(s.ingress.accepted for s in streams)
        frames_shed = sum(s.ingress.shed for s in streams)
        batches = sum(len(s.history) for s in streams)
        stats = self._pool.stats
        health = merge_shard_health(
            shard_health,
            n_shards=len(streams),
            workers=self.workers,
            batches=batches,
            worker_restarts=stats.worker_restarts,
            requeued_tasks=stats.requeued_tasks,
            frames_shed=frames_shed,
        )
        obs = None
        snaps = [s.obs_snapshot for s in streams if s.obs_snapshot]
        if snaps:
            obs = merge_obs_snapshots(
                snaps, extra_meta={"streams": len(streams),
                                   "workers": self.workers})
            counters = obs.setdefault("metrics", {}).setdefault(
                "counters", {})
            counters["serve.frames_shed"] = frames_shed
        return DaemonReport(
            health=health,
            obs=obs,
            streams=len(streams),
            frames_total=frames_total,
            frames_shed=frames_shed,
            batches=batches,
            worker_restarts=stats.worker_restarts,
            requeued_tasks=stats.requeued_tasks,
        )


# ----------------------------------------------------------------------
# Synchronous wrapper
# ----------------------------------------------------------------------
class DaemonHandle:
    """A :class:`ServingDaemon` on a background event loop.

    The facade for synchronous callers (tests, benchmarks, the CLI):
    ``DaemonHandle.launch(spec)`` returns once the daemon is listening;
    ``handle.client()`` connects a :class:`StreamClient`;
    ``drain()``/``reload()``/``stop()`` proxy the async calls.  Also a
    context manager (``with`` stops the daemon on exit).
    """

    def __init__(self, daemon: ServingDaemon, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.daemon = daemon
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @classmethod
    def launch(cls, spec: FarmSpec, *, timeout_s: float = 120.0,
               **daemon_kwargs) -> "DaemonHandle":
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True,
                                  name="repro-serve-daemon")
        thread.start()

        async def boot() -> ServingDaemon:
            daemon = ServingDaemon(spec, **daemon_kwargs)
            await daemon.start()
            return daemon

        fut = asyncio.run_coroutine_threadsafe(boot(), loop)
        try:
            daemon = fut.result(timeout=timeout_s)
        except Exception:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5.0)
            raise
        return cls(daemon, loop, thread)

    @property
    def address(self) -> Tuple[str, int]:
        return self.daemon.address

    def client(self, stream_id: int = ASSIGN_STREAM,
               **kwargs) -> StreamClient:
        host, port = self.address
        return StreamClient(host, port, stream_id=stream_id, **kwargs)

    def _call(self, coro, timeout_s: float):
        fut = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return fut.result(timeout=timeout_s)

    def drain(self, timeout_s: float = 300.0) -> DaemonReport:
        return self._call(self.daemon.drain(), timeout_s)

    def reload(self, spec: Optional[FarmSpec] = None,
               timeout_s: float = 300.0) -> DaemonReport:
        return self._call(self.daemon.reload(spec), timeout_s)

    def stop(self, timeout_s: float = 300.0) -> Optional[DaemonReport]:
        if self._stopped:
            return None
        report = self._call(self.daemon.stop(), timeout_s)
        self._stopped = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        return report

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Sequential reference
# ----------------------------------------------------------------------
@dataclass
class ReferenceStream:
    """One stream's sequential-reference output."""

    records: List[FrameRecord]
    rows: np.ndarray                    # (n, len(OUTPUT_COLUMNS))
    batches: List[Tuple[int, int]]
    health: Dict[str, Any] = field(default_factory=dict)


def serve_streams_reference(spec: FarmSpec,
                            stream_frames: Mapping[int, np.ndarray], *,
                            batching: Optional[BatchingPolicy] = None,
                            seed: Optional[int] = 0,
                            arrival_mode: str = "stream",
                            period_s: Optional[float] = None,
                            ) -> Dict[int, ReferenceStream]:
    """The daemon's bit-identity reference, sequential and in-process.

    One persistent replica per stream, fed the same micro-batch plan
    the daemon's ingress produces for the same accepted frames (the
    plan is a pure function of accepted count, policy, and arrival
    mode).  A daemon serving these frames — any worker count, any
    interleaving, with or without crash replays — must reproduce these
    records and output rows bit-exactly.
    """
    policy = batching or BatchingPolicy()
    if period_s is None:
        cfg = spec.config
        period_s = cfg.period_s if cfg is not None else FRAME_PERIOD_S
    out: Dict[int, ReferenceStream] = {}
    for sid, frames in stream_frames.items():
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        n = frames.shape[0]
        arrivals = (backlog_arrivals(n) if arrival_mode == "backlog"
                    else stream_arrivals(n, period_s))
        plan = plan_microbatches(arrivals, policy)
        runtime = spec.build_runtime()
        stream_seed = shard_seed(seed, sid)
        records: List[FrameRecord] = []
        for a, b in plan:
            records.extend(runtime.run(frames[a:b], seed=stream_seed))
        rows = np.full((n, len(OUTPUT_COLUMNS)), np.nan)
        row = output_row_writer(runtime)
        for i, r in enumerate(records):
            rows[i, :] = row(r)
        out[sid] = ReferenceStream(
            records=records,
            rows=rows,
            batches=plan,
            health=dataclasses.asdict(runtime.health_report()),
        )
    return out
