"""Length-prefixed wire protocols for serving (``repro-serve/1``) and
cross-host shard transport (``repro-hosts/1``).

Every message is a 9-byte header — magic ``b"RSRV"``, kind (u8),
payload length (u32), network byte order — followed by the payload.
The stream-serving messages (``repro-serve/1``, daemon ↔ client):

========  =========  =====================================================
kind      direction  payload
========  =========  =====================================================
HELLO     c → s      u32 protocol version, u32 requested stream id
                     (``ASSIGN_STREAM`` = pick one)
WELCOME   s → c      u32 stream id, u32 n_monitors (0 = not enforced)
FRAME     c → s      u64 client sequence number + n_monitors f64 samples
RESULT    s → c      u64 sequence number + 7 f64 (:data:`OUTPUT_COLUMNS`)
SHED      s → c      u64 sequence number (frame refused by admission)
EOS       c ↔ s      empty (client: no more frames; server: all results
                     for the accepted frames have been sent)
ERROR     s → c      UTF-8 text; the connection closes after it
========  =========  =====================================================

The host-transport messages (``repro-hosts/1``, farm ↔ host agent)
share the same framing and ERROR message and add:

============  =========  =================================================
kind          direction  payload
============  =========  =================================================
HOST_HELLO    c → s      u32 protocol version
HOST_WELCOME  s → c      u32 protocol version, u32 agent worker slots
HOST_SPEC     c → s      pickled :class:`~repro.serve.workers.FarmSpec`
HOST_SPEC_OK  s → c      empty (replica source armed; tasks may follow)
HOST_TASK     c → s      pickle of ``(kind, task, frames)`` — a
                         self-contained shard/stream task plus its own
                         frame block
HOST_RESULT   s → c      pickle of ``(task_id, TaskResult, out_rows)``
============  =========  =================================================

Both sides of either protocol **version-check the handshake**: a HELLO
or HOST_HELLO advertising an unknown version is answered with a clean
ERROR reply and an orderly close — an application-level refusal, not a
framing violation, so the decoder is never poisoned by a merely
too-new peer.

The framing layer is **sans-io**: :class:`MessageDecoder` consumes raw
bytes and yields ``(kind, payload)`` pairs, so the same code path runs
under asyncio in the daemon, over a blocking socket in
:class:`StreamClient`, byte-at-a-time in unit tests, and under the
host agent's ``selectors`` loop.  All numeric payloads are
little-endian float64 — the dtype frames already have in the farm's
shared-memory blocks, so a result row is bit-identical to the row the
worker wrote.
"""

from __future__ import annotations

import selectors
import socket
import struct
import time
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "MAGIC",
    "ASSIGN_STREAM",
    "SERVE_PROTO_VERSION",
    "HOSTS_PROTO_VERSION",
    "MAX_PAYLOAD",
    "HOST_MAX_PAYLOAD",
    "MsgKind",
    "ProtocolError",
    "MessageDecoder",
    "StreamClient",
    "pack",
    "pack_hello",
    "pack_welcome",
    "pack_frame",
    "pack_result",
    "pack_shed",
    "pack_eos",
    "pack_error",
    "pack_host_hello",
    "pack_host_welcome",
    "unpack_hello",
    "unpack_welcome",
    "unpack_frame",
    "unpack_result",
    "unpack_seq",
    "unpack_host_hello",
    "unpack_host_welcome",
]

MAGIC = b"RSRV"
_HEADER = struct.Struct("!4sBI")
_U32 = struct.Struct("!I")
_U32x2 = struct.Struct("!II")
_U64 = struct.Struct("!Q")

#: Payloads above this are a protocol violation (guards the decoder
#: against allocating unbounded buffers for a corrupt length field).
MAX_PAYLOAD = 1 << 24

#: The host transport ships whole frame blocks and pickled result
#: streams in one message, so its decoder accepts larger payloads.
HOST_MAX_PAYLOAD = 1 << 28

#: Version this build speaks for ``repro-serve/1`` (HELLO handshake).
SERVE_PROTO_VERSION = 1

#: Version this build speaks for ``repro-hosts/1`` (HOST_HELLO).
HOSTS_PROTO_VERSION = 1

#: HELLO stream id meaning "server assigns".
ASSIGN_STREAM = 0xFFFFFFFF


class MsgKind(IntEnum):
    HELLO = 1
    WELCOME = 2
    FRAME = 3
    RESULT = 4
    SHED = 5
    EOS = 6
    ERROR = 7
    # repro-hosts/1 (farm <-> host agent) -------------------------------
    HOST_HELLO = 8
    HOST_WELCOME = 9
    HOST_SPEC = 10
    HOST_SPEC_OK = 11
    HOST_TASK = 12
    HOST_RESULT = 13


class ProtocolError(ValueError):
    """Malformed framing or payload."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def pack(kind: MsgKind, payload: bytes = b"", *,
         max_payload: int = MAX_PAYLOAD) -> bytes:
    if len(payload) > max_payload:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds "
                            f"the payload bound ({max_payload})")
    return _HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def pack_hello(stream_id: int = ASSIGN_STREAM,
               version: int = SERVE_PROTO_VERSION) -> bytes:
    return pack(MsgKind.HELLO, _U32x2.pack(version, stream_id))


def pack_welcome(stream_id: int, n_monitors: int) -> bytes:
    return pack(MsgKind.WELCOME, _U32x2.pack(stream_id, n_monitors))


def pack_frame(seq: int, vec: np.ndarray) -> bytes:
    data = np.ascontiguousarray(vec, dtype="<f8").tobytes()
    return pack(MsgKind.FRAME, _U64.pack(seq) + data)


def pack_result(seq: int, row: np.ndarray) -> bytes:
    data = np.ascontiguousarray(row, dtype="<f8").tobytes()
    return pack(MsgKind.RESULT, _U64.pack(seq) + data)


def pack_shed(seq: int) -> bytes:
    return pack(MsgKind.SHED, _U64.pack(seq))


def pack_eos() -> bytes:
    return pack(MsgKind.EOS)


def pack_error(text: str) -> bytes:
    return pack(MsgKind.ERROR, text.encode("utf-8", "replace"))


def pack_host_hello(version: int = HOSTS_PROTO_VERSION) -> bytes:
    return pack(MsgKind.HOST_HELLO, _U32.pack(version))


def pack_host_welcome(slots: int,
                      version: int = HOSTS_PROTO_VERSION) -> bytes:
    return pack(MsgKind.HOST_WELCOME, _U32x2.pack(version, slots))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def unpack_hello(payload: bytes) -> Tuple[int, int]:
    """HELLO payload → ``(version, requested_stream_id)``."""
    if len(payload) != _U32x2.size:
        raise ProtocolError(f"HELLO payload must be {_U32x2.size} bytes")
    return _U32x2.unpack(payload)


def unpack_welcome(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _U32x2.size:
        raise ProtocolError(f"WELCOME payload must be {_U32x2.size} bytes")
    return _U32x2.unpack(payload)


def _seq_and_floats(payload: bytes, what: str) -> Tuple[int, np.ndarray]:
    if len(payload) < _U64.size or (len(payload) - _U64.size) % 8:
        raise ProtocolError(f"{what} payload must be 8 + 8k bytes, "
                            f"got {len(payload)}")
    seq = _U64.unpack_from(payload)[0]
    values = np.frombuffer(payload, dtype="<f8", offset=_U64.size).copy()
    return seq, values


def unpack_frame(payload: bytes) -> Tuple[int, np.ndarray]:
    return _seq_and_floats(payload, "FRAME")


def unpack_result(payload: bytes) -> Tuple[int, np.ndarray]:
    return _seq_and_floats(payload, "RESULT")


def unpack_seq(payload: bytes) -> int:
    if len(payload) != _U64.size:
        raise ProtocolError(f"payload must be {_U64.size} bytes")
    return _U64.unpack(payload)[0]


def unpack_host_hello(payload: bytes) -> int:
    """HOST_HELLO payload → advertised protocol version."""
    if len(payload) != _U32.size:
        raise ProtocolError(f"HOST_HELLO payload must be {_U32.size} bytes")
    return _U32.unpack(payload)[0]


def unpack_host_welcome(payload: bytes) -> Tuple[int, int]:
    """HOST_WELCOME payload → ``(version, agent_worker_slots)``."""
    if len(payload) != _U32x2.size:
        raise ProtocolError(
            f"HOST_WELCOME payload must be {_U32x2.size} bytes")
    return _U32x2.unpack(payload)


class MessageDecoder:
    """Incremental sans-io frame decoder.

    ``feed`` raw bytes in any fragmentation; iterate to drain complete
    ``(kind, payload)`` messages.  Framing violations raise
    :class:`ProtocolError` and poison the decoder (a stream that lost
    sync cannot be trusted again).  ``max_payload`` defaults to the
    serve-protocol bound; the host transport passes
    :data:`HOST_MAX_PAYLOAD` (whole frame blocks per message).
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self._buf = bytearray()
        self._poisoned = False
        self._max_payload = max_payload

    def feed(self, data: bytes) -> None:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned after a framing error")
        self._buf.extend(data)

    def __iter__(self) -> Iterator[Tuple[MsgKind, bytes]]:
        while True:
            msg = self.next_message()
            if msg is None:
                return
            yield msg

    def next_message(self) -> Optional[Tuple[MsgKind, bytes]]:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned after a framing error")
        if len(self._buf) < _HEADER.size:
            return None
        magic, kind, length = _HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            self._poisoned = True
            raise ProtocolError(f"bad magic {bytes(magic)!r}")
        if length > self._max_payload:
            self._poisoned = True
            raise ProtocolError(f"payload length {length} exceeds "
                                f"the payload bound ({self._max_payload})")
        try:
            kind = MsgKind(kind)
        except ValueError:
            self._poisoned = True
            raise ProtocolError(f"unknown message kind {kind}") from None
        if len(self._buf) < _HEADER.size + length:
            return None
        payload = bytes(self._buf[_HEADER.size:_HEADER.size + length])
        del self._buf[:_HEADER.size + length]
        return kind, payload


# ----------------------------------------------------------------------
# Blocking client (tests, benchmarks, experiments)
# ----------------------------------------------------------------------
class StreamClient:
    """One daemon stream over a blocking socket.

    Small by design — send frames, pump the socket, collect results —
    so tests and benchmarks can drive many interleaved streams from a
    single thread.  ``results`` maps the client's sequence numbers to
    :data:`~repro.serve.workers.OUTPUT_COLUMNS` rows; ``shed`` holds
    the sequence numbers the daemon refused under admission control.
    """

    def __init__(self, host: str, port: int,
                 stream_id: int = ASSIGN_STREAM,
                 connect_timeout_s: float = 30.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=connect_timeout_s)
        # Frames stream back-to-back as small writes; without NODELAY
        # Nagle parks each one behind the previous write's unACKed tail
        # for up to a delayed-ACK interval.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self.sock, selectors.EVENT_READ)
        self._decoder = MessageDecoder()
        self.results: Dict[int, np.ndarray] = {}
        self.shed: List[int] = []
        self.errors: List[str] = []
        self.eos_seen = False
        self._next_seq = 0
        self._send_all(pack_hello(stream_id))
        self.stream_id, self.n_monitors = self._await_welcome(
            connect_timeout_s)

    # -- plumbing ------------------------------------------------------
    def _wait_io(self, timeout_s: float, *, write: bool = False) -> None:
        """Block until the socket is ready (or *timeout_s* elapses).

        A readiness wait instead of a sleep poll: the client wakes the
        instant data (or buffer space, with ``write=True``) arrives —
        no 1–2 ms latency floor on small-batch round-trips, no burnt
        CPU at high stream counts.
        """
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if write
                                         else 0)
        self._sel.modify(self.sock, events)
        try:
            self._sel.select(max(timeout_s, 0.0))
        finally:
            self._sel.modify(self.sock, selectors.EVENT_READ)

    def _send_all(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            try:
                sent = self.sock.send(view)
            except BlockingIOError:
                # Socket buffer full: keep draining server pushes so a
                # send-heavy client can never deadlock against a
                # result-heavy server, then wait for writability (or
                # fresh server data) instead of spinning.
                self.pump()
                self._wait_io(0.25, write=True)
                continue
            view = view[sent:]

    def _await_welcome(self, timeout_s: float) -> Tuple[int, int]:
        deadline = time.monotonic() + timeout_s
        while True:
            self.pump()
            if hasattr(self, "_welcome"):
                return self._welcome
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("no WELCOME from daemon")
            self._wait_io(min(remaining, 0.25))

    # -- public --------------------------------------------------------
    def send(self, vec: np.ndarray, seq: Optional[int] = None) -> int:
        """Ship one frame; returns its sequence number."""
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        self._send_all(pack_frame(seq, vec))
        return seq

    def send_eos(self) -> None:
        self._send_all(pack_eos())

    def pump(self) -> None:
        """Drain whatever the socket has buffered (non-blocking)."""
        while True:
            try:
                data = self.sock.recv(1 << 16)
            except BlockingIOError:
                return
            except OSError:
                return
            if not data:
                return
            self._decoder.feed(data)
            for kind, payload in self._decoder:
                if kind == MsgKind.RESULT:
                    seq, row = unpack_result(payload)
                    self.results[seq] = row
                elif kind == MsgKind.SHED:
                    self.shed.append(unpack_seq(payload))
                elif kind == MsgKind.EOS:
                    self.eos_seen = True
                elif kind == MsgKind.WELCOME:
                    self._welcome = unpack_welcome(payload)
                elif kind == MsgKind.ERROR:
                    self.errors.append(payload.decode("utf-8", "replace"))

    def settled(self) -> bool:
        """Every sent frame is accounted for (result or shed)."""
        return len(self.results) + len(self.shed) >= self._next_seq

    def wait_settled(self, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while True:
            self.pump()
            if self.settled():
                return
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"stream {self.stream_id}: "
                    f"{len(self.results)} results + {len(self.shed)} shed "
                    f"of {self._next_seq} frames after {timeout_s:.0f}s")
            self._wait_io(min(remaining, 0.25))

    def finish(self, timeout_s: float = 60.0) -> None:
        """EOS handshake: flush the tail batch, wait for all results."""
        self.send_eos()
        deadline = time.monotonic() + timeout_s
        while True:
            self.pump()
            if self.eos_seen and self.settled():
                return
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"stream {self.stream_id}: no EOS "
                                   f"after {timeout_s:.0f}s")
            self._wait_io(min(remaining, 0.25))

    def close(self) -> None:
        try:
            self._sel.close()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
