"""Length-prefixed wire protocol for the serving daemon (``repro-serve/1``).

Every message is a 9-byte header — magic ``b"RSRV"``, kind (u8),
payload length (u32), network byte order — followed by the payload:

========  =========  =====================================================
kind      direction  payload
========  =========  =====================================================
HELLO     c → s      u32 requested stream id (``ASSIGN_STREAM`` = pick one)
WELCOME   s → c      u32 stream id, u32 n_monitors (0 = not enforced)
FRAME     c → s      u64 client sequence number + n_monitors f64 samples
RESULT    s → c      u64 sequence number + 7 f64 (:data:`OUTPUT_COLUMNS`)
SHED      s → c      u64 sequence number (frame refused by admission)
EOS       c ↔ s      empty (client: no more frames; server: all results
                     for the accepted frames have been sent)
ERROR     s → c      UTF-8 text; the connection closes after it
========  =========  =====================================================

The framing layer is **sans-io**: :class:`MessageDecoder` consumes raw
bytes and yields ``(kind, payload)`` pairs, so the same code path runs
under asyncio in the daemon, over a blocking socket in
:class:`StreamClient`, and byte-at-a-time in unit tests.  All numeric
payloads are little-endian float64 — the dtype frames already have in
the farm's shared-memory blocks, so a result row is bit-identical to
the row the worker wrote.
"""

from __future__ import annotations

import socket
import struct
import time
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "MAGIC",
    "ASSIGN_STREAM",
    "MsgKind",
    "ProtocolError",
    "MessageDecoder",
    "StreamClient",
    "pack",
    "pack_hello",
    "pack_welcome",
    "pack_frame",
    "pack_result",
    "pack_shed",
    "pack_eos",
    "pack_error",
    "unpack_hello",
    "unpack_welcome",
    "unpack_frame",
    "unpack_result",
    "unpack_seq",
]

MAGIC = b"RSRV"
_HEADER = struct.Struct("!4sBI")
_U32 = struct.Struct("!I")
_U32x2 = struct.Struct("!II")
_U64 = struct.Struct("!Q")

#: Payloads above this are a protocol violation (guards the decoder
#: against allocating unbounded buffers for a corrupt length field).
MAX_PAYLOAD = 1 << 24

#: HELLO stream id meaning "server assigns".
ASSIGN_STREAM = 0xFFFFFFFF


class MsgKind(IntEnum):
    HELLO = 1
    WELCOME = 2
    FRAME = 3
    RESULT = 4
    SHED = 5
    EOS = 6
    ERROR = 7


class ProtocolError(ValueError):
    """Malformed framing or payload."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def pack(kind: MsgKind, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds "
                            f"MAX_PAYLOAD ({MAX_PAYLOAD})")
    return _HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def pack_hello(stream_id: int = ASSIGN_STREAM) -> bytes:
    return pack(MsgKind.HELLO, _U32.pack(stream_id))


def pack_welcome(stream_id: int, n_monitors: int) -> bytes:
    return pack(MsgKind.WELCOME, _U32x2.pack(stream_id, n_monitors))


def pack_frame(seq: int, vec: np.ndarray) -> bytes:
    data = np.ascontiguousarray(vec, dtype="<f8").tobytes()
    return pack(MsgKind.FRAME, _U64.pack(seq) + data)


def pack_result(seq: int, row: np.ndarray) -> bytes:
    data = np.ascontiguousarray(row, dtype="<f8").tobytes()
    return pack(MsgKind.RESULT, _U64.pack(seq) + data)


def pack_shed(seq: int) -> bytes:
    return pack(MsgKind.SHED, _U64.pack(seq))


def pack_eos() -> bytes:
    return pack(MsgKind.EOS)


def pack_error(text: str) -> bytes:
    return pack(MsgKind.ERROR, text.encode("utf-8", "replace"))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def unpack_hello(payload: bytes) -> int:
    if len(payload) != _U32.size:
        raise ProtocolError(f"HELLO payload must be {_U32.size} bytes")
    return _U32.unpack(payload)[0]


def unpack_welcome(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _U32x2.size:
        raise ProtocolError(f"WELCOME payload must be {_U32x2.size} bytes")
    return _U32x2.unpack(payload)


def _seq_and_floats(payload: bytes, what: str) -> Tuple[int, np.ndarray]:
    if len(payload) < _U64.size or (len(payload) - _U64.size) % 8:
        raise ProtocolError(f"{what} payload must be 8 + 8k bytes, "
                            f"got {len(payload)}")
    seq = _U64.unpack_from(payload)[0]
    values = np.frombuffer(payload, dtype="<f8", offset=_U64.size).copy()
    return seq, values


def unpack_frame(payload: bytes) -> Tuple[int, np.ndarray]:
    return _seq_and_floats(payload, "FRAME")


def unpack_result(payload: bytes) -> Tuple[int, np.ndarray]:
    return _seq_and_floats(payload, "RESULT")


def unpack_seq(payload: bytes) -> int:
    if len(payload) != _U64.size:
        raise ProtocolError(f"payload must be {_U64.size} bytes")
    return _U64.unpack(payload)[0]


class MessageDecoder:
    """Incremental sans-io frame decoder.

    ``feed`` raw bytes in any fragmentation; iterate to drain complete
    ``(kind, payload)`` messages.  Framing violations raise
    :class:`ProtocolError` and poison the decoder (a stream that lost
    sync cannot be trusted again).
    """

    def __init__(self):
        self._buf = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> None:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned after a framing error")
        self._buf.extend(data)

    def __iter__(self) -> Iterator[Tuple[MsgKind, bytes]]:
        while True:
            msg = self.next_message()
            if msg is None:
                return
            yield msg

    def next_message(self) -> Optional[Tuple[MsgKind, bytes]]:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned after a framing error")
        if len(self._buf) < _HEADER.size:
            return None
        magic, kind, length = _HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            self._poisoned = True
            raise ProtocolError(f"bad magic {bytes(magic)!r}")
        if length > MAX_PAYLOAD:
            self._poisoned = True
            raise ProtocolError(f"payload length {length} exceeds "
                                f"MAX_PAYLOAD ({MAX_PAYLOAD})")
        try:
            kind = MsgKind(kind)
        except ValueError:
            self._poisoned = True
            raise ProtocolError(f"unknown message kind {kind}") from None
        if len(self._buf) < _HEADER.size + length:
            return None
        payload = bytes(self._buf[_HEADER.size:_HEADER.size + length])
        del self._buf[:_HEADER.size + length]
        return kind, payload


# ----------------------------------------------------------------------
# Blocking client (tests, benchmarks, experiments)
# ----------------------------------------------------------------------
class StreamClient:
    """One daemon stream over a blocking socket.

    Small by design — send frames, pump the socket, collect results —
    so tests and benchmarks can drive many interleaved streams from a
    single thread.  ``results`` maps the client's sequence numbers to
    :data:`~repro.serve.workers.OUTPUT_COLUMNS` rows; ``shed`` holds
    the sequence numbers the daemon refused under admission control.
    """

    def __init__(self, host: str, port: int,
                 stream_id: int = ASSIGN_STREAM,
                 connect_timeout_s: float = 30.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=connect_timeout_s)
        self.sock.setblocking(False)
        self._decoder = MessageDecoder()
        self.results: Dict[int, np.ndarray] = {}
        self.shed: List[int] = []
        self.errors: List[str] = []
        self.eos_seen = False
        self._next_seq = 0
        self._send_all(pack_hello(stream_id))
        self.stream_id, self.n_monitors = self._await_welcome(
            connect_timeout_s)

    # -- plumbing ------------------------------------------------------
    def _send_all(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            try:
                sent = self.sock.send(view)
            except BlockingIOError:
                # Socket buffer full: keep draining server pushes so a
                # send-heavy client can never deadlock against a
                # result-heavy server.
                self.pump()
                time.sleep(0.001)
                continue
            view = view[sent:]

    def _await_welcome(self, timeout_s: float) -> Tuple[int, int]:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self.pump()
            if hasattr(self, "_welcome"):
                return self._welcome
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            time.sleep(0.002)
        raise TimeoutError("no WELCOME from daemon")

    # -- public --------------------------------------------------------
    def send(self, vec: np.ndarray, seq: Optional[int] = None) -> int:
        """Ship one frame; returns its sequence number."""
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        self._send_all(pack_frame(seq, vec))
        return seq

    def send_eos(self) -> None:
        self._send_all(pack_eos())

    def pump(self) -> None:
        """Drain whatever the socket has buffered (non-blocking)."""
        while True:
            try:
                data = self.sock.recv(1 << 16)
            except BlockingIOError:
                return
            except OSError:
                return
            if not data:
                return
            self._decoder.feed(data)
            for kind, payload in self._decoder:
                if kind == MsgKind.RESULT:
                    seq, row = unpack_result(payload)
                    self.results[seq] = row
                elif kind == MsgKind.SHED:
                    self.shed.append(unpack_seq(payload))
                elif kind == MsgKind.EOS:
                    self.eos_seen = True
                elif kind == MsgKind.WELCOME:
                    self._welcome = unpack_welcome(payload)
                elif kind == MsgKind.ERROR:
                    self.errors.append(payload.decode("utf-8", "replace"))

    def settled(self) -> bool:
        """Every sent frame is accounted for (result or shed)."""
        return len(self.results) + len(self.shed) >= self._next_seq

    def wait_settled(self, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while not self.settled():
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"stream {self.stream_id}: "
                    f"{len(self.results)} results + {len(self.shed)} shed "
                    f"of {self._next_seq} frames after {timeout_s:.0f}s")
            self.pump()
            time.sleep(0.001)

    def finish(self, timeout_s: float = 60.0) -> None:
        """EOS handshake: flush the tail batch, wait for all results."""
        self.send_eos()
        deadline = time.monotonic() + timeout_s
        while not (self.eos_seen and self.settled()):
            if self.errors:
                raise ProtocolError(f"server error: {self.errors[0]}")
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {self.stream_id}: no EOS "
                                   f"after {timeout_s:.0f}s")
            self.pump()
            time.sleep(0.001)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
