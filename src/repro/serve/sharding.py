"""Deterministic stream sharding for the serving farm.

The distributed-readout companion deployment feeds *many* synchronous
BLM streams into the central complex.  The farm models that as N
**shards**: shard ``s`` owns every global frame ``g`` with
``g % n_shards == s``, re-indexed to a shard-local stream ``0..n_s-1``
on its own 3 ms digitizer grid.  The assignment is pure arithmetic —
no queue hand-off, no arrival race — so the same global frame block
always lands on the same shard at the same local position, regardless
of how many worker processes execute the shards.

Seeds follow the same discipline as
:func:`repro.soc.runtime.derive_stream_seeds`: each shard draws its
hub/jitter streams from a :class:`numpy.random.SeedSequence` child
spawned off the farm seed with the shard index in the spawn key, so

* two shards of one farm never share a stream,
* a shard's stream is independent of how frames were micro-batched
  (the runtime folds the batch start index into the spawn key itself),
* re-running the same farm seed is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["ShardPlan", "shard_seed", "SERVE_SPAWN_TAG"]

#: Leading spawn-key element for farm shard seeds ("SERV" in ASCII).
#: Keeps farm-derived SeedSequence children disjoint from every other
#: spawn-key user (the runtime folds plain ``(start,)`` keys).
SERVE_SPAWN_TAG = 0x53455256


def shard_seed(entropy, shard: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` driving one shard.

    ``entropy`` is the farm seed (int or None); the shard index goes
    into the spawn key, after which the runtime's own
    :func:`~repro.soc.runtime.derive_stream_seeds` appends the batch
    start index — giving the full key ``(TAG, shard, start)``.
    """
    if shard < 0:
        raise ValueError(f"shard must be >= 0, got {shard}")
    return np.random.SeedSequence(entropy=entropy,
                                  spawn_key=(SERVE_SPAWN_TAG, shard))


@dataclass(frozen=True)
class ShardPlan:
    """Round-robin assignment of a global frame block to shards.

    Global frame ``g`` → shard ``g % n_shards``, local position
    ``g // n_shards``; the inverse is ``g = pos * n_shards + shard``.
    """

    n_frames: int
    n_shards: int

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_frames < 0:
            raise ValueError(f"n_frames must be >= 0, got {self.n_frames}")

    # ------------------------------------------------------------------
    def shard_of(self, g: int) -> int:
        return g % self.n_shards

    def local_of(self, g: int) -> int:
        return g // self.n_shards

    def global_of(self, shard: int, pos: int) -> int:
        return pos * self.n_shards + shard

    def shard_size(self, shard: int) -> int:
        """Frames shard *shard* owns out of the block."""
        base, extra = divmod(self.n_frames, self.n_shards)
        return base + (1 if shard < extra else 0)

    def shard_globals(self, shard: int) -> Tuple[int, ...]:
        """Global indices of shard *shard*, in local (arrival) order."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards}), "
                             f"got {shard}")
        return tuple(range(shard, self.n_frames, self.n_shards))

    def gather(self, per_shard: List[list]) -> list:
        """Interleave per-shard result lists back into global order.

        ``per_shard[s][p]`` is the result of global frame
        ``p * n_shards + s``; the output is ordered ``0..n_frames-1``.
        """
        if len(per_shard) != self.n_shards:
            raise ValueError(
                f"expected {self.n_shards} shard lists, got {len(per_shard)}")
        out = [None] * self.n_frames
        for s, items in enumerate(per_shard):
            if len(items) != self.shard_size(s):
                raise ValueError(
                    f"shard {s}: expected {self.shard_size(s)} results, "
                    f"got {len(items)}")
            for p, item in enumerate(items):
                out[self.global_of(s, p)] = item
        return out
