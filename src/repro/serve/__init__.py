"""repro.serve — the sharded multi-worker serving front-end.

Scales the single :class:`~repro.soc.runtime.CentralNodeRuntime` to a
farm of stream shards (the "many BLM streams, many nodes" deployment of
the distributed-readout companion paper) without giving up the repo's
load-bearing property: **bit-exact determinism**.  A farm run on a
spawn-based worker pool produces the same :class:`FrameRecord` stream,
word for word, as the same plan executed sequentially in one process —
for every worker count and every compile level.

Layering (bottom up):

* :mod:`repro.serve.sharding` — round-robin stream shards + spawn-key
  seed derivation,
* :mod:`repro.serve.batching` — deadline-aware micro-batch planning on
  the simulated arrival clock,
* :mod:`repro.serve.workers` — picklable replica specs, pure shard
  tasks, the shared-memory worker pool with crash recovery,
* :mod:`repro.serve.merge` — per-shard metrics/span snapshot merging
  into one ``repro-obs/1`` export,
* :mod:`repro.serve.health` — :class:`FarmHealth` aggregation,
* :mod:`repro.serve.farm` — :class:`ShardedNodeFarm`, tying it all
  together,
* :mod:`repro.serve.protocol` — the ``repro-serve/1`` length-prefixed
  wire protocol (sans-io decoder + blocking :class:`StreamClient`),
* :mod:`repro.serve.daemon` — :class:`ServingDaemon`, the persistent
  socket-serving front: warm worker pool, per-stream micro-batching,
  admission control, drain/reload,
* :mod:`repro.serve.remote` — the ``repro-hosts/1`` cross-host shard
  transport: :class:`HostAgent` processes execute shard tasks for a
  :class:`HostPool` that dispatches across hosts + local workers with
  partition-aware recovery,
* :mod:`repro.serve.replay` — seeded bursty traffic-replay load
  generation (deterministic admission simulation + live driver).

See docs/serving.md for the architecture and the determinism contract;
``repro.core.api`` exposes the :func:`~repro.core.api.build_farm` /
:func:`~repro.core.api.serve_frames` /
:func:`~repro.core.api.start_daemon` facade.
"""

from repro.serve.batching import BatchingPolicy, MicroBatcher, plan_microbatches
from repro.serve.daemon import (
    DaemonHandle,
    DaemonReport,
    ServingDaemon,
    StreamIngress,
    serve_streams_reference,
)
from repro.serve.farm import FarmPlan, FarmResult, ShardedNodeFarm
from repro.serve.health import FarmHealth, merge_shard_health
from repro.serve.merge import merge_metrics_snapshots, merge_obs_snapshots
from repro.serve.protocol import MessageDecoder, MsgKind, ProtocolError, StreamClient
from repro.serve.replay import (
    BurstModel,
    ReplayReport,
    ReplaySchedule,
    ReplaySim,
    replay_streams,
    simulate_admission,
    synth_schedule,
)
from repro.serve.sharding import ShardPlan, shard_seed
from repro.serve.workers import (
    OUTPUT_COLUMNS,
    STATUS_CODES,
    BlockHandle,
    FarmSpec,
    PlantTask,
    PoolStats,
    ReplicaSource,
    ShardTask,
    StreamFinish,
    StreamTask,
    TaskResult,
    WorkerCrashError,
    WorkerPool,
    execute_plant_task,
    execute_shard_task,
    execute_stream_task,
)

__all__ = [
    "BatchingPolicy",
    "MicroBatcher",
    "plan_microbatches",
    "FarmPlan",
    "FarmResult",
    "ShardedNodeFarm",
    "FarmHealth",
    "merge_shard_health",
    "merge_metrics_snapshots",
    "merge_obs_snapshots",
    "ShardPlan",
    "shard_seed",
    "FarmSpec",
    "ShardTask",
    "StreamTask",
    "StreamFinish",
    "PlantTask",
    "TaskResult",
    "WorkerCrashError",
    "WorkerPool",
    "PoolStats",
    "BlockHandle",
    "ReplicaSource",
    "execute_plant_task",
    "execute_shard_task",
    "execute_stream_task",
    "OUTPUT_COLUMNS",
    "STATUS_CODES",
    "ServingDaemon",
    "DaemonHandle",
    "DaemonReport",
    "StreamIngress",
    "serve_streams_reference",
    "MessageDecoder",
    "MsgKind",
    "ProtocolError",
    "StreamClient",
    "HostAgent",
    "HostPool",
    "AgentProcess",
    "spawn_agent",
    "BurstModel",
    "ReplaySchedule",
    "ReplaySim",
    "ReplayReport",
    "synth_schedule",
    "simulate_admission",
    "replay_streams",
]

# repro.serve.remote doubles as the host-agent entry point
# (``python -m repro.serve.remote``); importing it eagerly here would
# make runpy warn about the module being in sys.modules before it runs
# as __main__.  Resolve its exports lazily instead (PEP 562).
_REMOTE_EXPORTS = ("HostAgent", "HostPool", "AgentProcess", "spawn_agent")


def __getattr__(name):
    if name in _REMOTE_EXPORTS:
        from repro.serve import remote
        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
