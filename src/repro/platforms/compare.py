"""Cross-platform comparison harness (the data behind Fig 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.nn.model import Model
from repro.platforms.base import Platform, PlatformResult
from repro.platforms.cpu import CPUPlatform
from repro.platforms.fpga import FPGAPlatform
from repro.platforms.gpu import GPUPlatform
from repro.utils.tables import Table

__all__ = ["compare_platforms", "gpu_batch_sweep"]


def compare_platforms(
    models: Sequence[Model],
    platforms: Optional[Sequence[Platform]] = None,
    batch_size: int = 1,
) -> List[PlatformResult]:
    """Latency of every model on every platform at *batch_size*.

    Defaults to the paper's trio (CPU, GPU, FPGA SoC) at batch 1.
    """
    if platforms is None:
        platforms = [CPUPlatform(), GPUPlatform(), FPGAPlatform()]
    results = []
    for model in models:
        for platform in platforms:
            results.append(platform.latency(model, batch_size))
    return results


def gpu_batch_sweep(model: Model,
                    batch_sizes: Sequence[int] = (1, 8, 64, 512, 4096),
                    gpu: Optional[GPUPlatform] = None) -> List[PlatformResult]:
    """Per-frame GPU latency vs batch size — the amortization curve that
    justifies "GPUs are only efficient when large batches of data are
    available" (Section I)."""
    gpu = gpu or GPUPlatform()
    return [gpu.latency(model, b) for b in batch_sizes]


def comparison_table(results: Sequence[PlatformResult]) -> Table:
    """Render results as a printable table (ms units, Fig 3 layout)."""
    t = Table(["Model", "Platform", "Batch", "Latency (ms)",
               "Per-frame (ms)", "Meets 3 ms"])
    for r in results:
        t.add_row([
            r.model_name,
            r.platform,
            r.batch_size,
            f"{r.latency_s * 1e3:.3f}",
            f"{r.per_frame_s * 1e3:.4f}",
            "yes" if r.latency_s <= 3e-3 and r.batch_size == 1 else "-",
        ])
    return t
