"""CPU latency model.

"The high CPU latency is mainly due to the long control and data path
delays which cannot be customized for the needs of our specific model"
(Section III-B): a Keras ``predict`` on a server CPU pays a per-call
framework overhead of a few milliseconds plus the arithmetic at a
sustained single-stream FLOP rate.
"""

from __future__ import annotations

from repro.nn.model import Model
from repro.platforms.base import Platform, PlatformResult, model_flops

__all__ = ["CPUPlatform"]


class CPUPlatform(Platform):
    """Framework-overhead-plus-FLOPs model of a Xeon-class CPU.

    Parameters
    ----------
    framework_overhead_s:
        Fixed per-``predict`` cost (graph dispatch, layer setup).
    sustained_flops:
        Effective single-stream throughput on small tensors.
    """

    name = "CPU (Keras)"

    def __init__(self, framework_overhead_s: float = 2.2e-3,
                 sustained_flops: float = 8e9):
        if framework_overhead_s < 0 or sustained_flops <= 0:
            raise ValueError("invalid CPU model parameters")
        self.framework_overhead_s = framework_overhead_s
        self.sustained_flops = sustained_flops

    def latency(self, model: Model, batch_size: int = 1) -> PlatformResult:
        flops = model_flops(model) * batch_size
        latency = self.framework_overhead_s + flops / self.sustained_flops
        return self._result(model, batch_size, latency)
