"""GPU latency model.

"The GPU performs well, with latencies in microseconds range, if we feed
large batches … Sensor data arrives in small batches and in that case,
we observe that the GPU performs similarly to the CPU" (Section III-B).
The model captures both regimes: per-layer kernel-launch overhead and
PCIe transfer dominate at batch 1; arithmetic throughput dominates at
large batches.
"""

from __future__ import annotations

from repro.nn.model import Model
from repro.platforms.base import Platform, PlatformResult, model_flops, model_layers

__all__ = ["GPUPlatform"]


class GPUPlatform(Platform):
    """Launch-overhead + transfer + throughput model of a datacentre GPU.

    Parameters
    ----------
    launch_overhead_s:
        Cost per layer dispatch at batch 1 — dominated by the Keras/TF
        graph-execution overhead around each kernel launch, which is why
        it is hundreds of microseconds rather than the raw CUDA launch
        cost (this is what makes "GPU ≈ CPU at batch 1" in Fig 3).
    transfer_overhead_s / transfer_bytes_per_s:
        PCIe round-trip setup and bandwidth for inputs/outputs.
    peak_flops:
        Sustained arithmetic throughput at large batch.
    """

    name = "GPU (Keras)"

    def __init__(self, launch_overhead_s: float = 250e-6,
                 transfer_overhead_s: float = 300e-6,
                 transfer_bytes_per_s: float = 12e9,
                 peak_flops: float = 10e12):
        if min(launch_overhead_s, transfer_overhead_s) < 0:
            raise ValueError("overheads must be >= 0")
        if min(transfer_bytes_per_s, peak_flops) <= 0:
            raise ValueError("rates must be positive")
        self.launch_overhead_s = launch_overhead_s
        self.transfer_overhead_s = transfer_overhead_s
        self.transfer_bytes_per_s = transfer_bytes_per_s
        self.peak_flops = peak_flops

    def latency(self, model: Model, batch_size: int = 1) -> PlatformResult:
        import numpy as np

        launches = model_layers(model) * self.launch_overhead_s
        io_elements = int(np.prod(model.inputs[0].shape)) + int(
            np.prod(model.outputs[0].shape)
        )
        transfer = self.transfer_overhead_s + (
            io_elements * 4 * batch_size / self.transfer_bytes_per_s
        )
        compute = model_flops(model) * batch_size / self.peak_flops
        return self._result(model, batch_size, launches + transfer + compute)
