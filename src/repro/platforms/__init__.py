"""Platform latency models for the paper's CPU/GPU/FPGA comparison.

Section III-B motivates the FPGA SoC with a preliminary experiment: the
Keras models on a CPU and a GPU at batch size 1 (sensor data arrives one
260-value frame every 3 ms, so there is never a large batch to amortize
over).  These analytic models reproduce that comparison's *shape*:

* CPU — framework overhead plus modest sustained FLOPs; ms-range for
  both models.
* GPU — per-kernel-launch overhead dominates at batch 1 (≈ CPU-level
  latency); at large batches the per-frame cost amortizes into the µs
  range, which is exactly the regime the control application never sees.
* FPGA SoC — the measured behaviour of :class:`repro.soc.AchillesBoard`.
"""

from repro.platforms.base import Platform, PlatformResult
from repro.platforms.cpu import CPUPlatform
from repro.platforms.gpu import GPUPlatform
from repro.platforms.fpga import FPGAPlatform
from repro.platforms.compare import compare_platforms, gpu_batch_sweep

__all__ = [
    "Platform",
    "PlatformResult",
    "CPUPlatform",
    "GPUPlatform",
    "FPGAPlatform",
    "compare_platforms",
    "gpu_batch_sweep",
]
