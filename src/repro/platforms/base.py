"""Platform interface and shared model-cost extraction."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.model import Model

__all__ = ["Platform", "PlatformResult", "model_flops", "model_layers"]


def model_flops(model: Model) -> int:
    """Multiply-accumulate FLOPs per single-frame inference (2 per MAC)."""
    macs = 0
    for layer in model.layers:
        if isinstance(layer, Dense):
            fan_in, units = layer.params["kernel"].shape
            positions = int(np.prod(layer.output_shape[:-1])) or 1
            macs += fan_in * units * positions
        elif isinstance(layer, Conv1D):
            k, cin, cout = layer.params["kernel"].shape
            positions = int(layer.output_shape[0])
            macs += k * cin * cout * positions
    return 2 * macs


def model_layers(model: Model) -> int:
    """Number of compute layers (kernel launches on a GPU)."""
    return sum(1 for l in model.layers if l.params or type(l).__name__ in (
        "ReLU", "Sigmoid", "Tanh", "Softmax", "MaxPooling1D",
        "AveragePooling1D", "UpSampling1D", "Concatenate"))


@dataclass(frozen=True)
class PlatformResult:
    """Latency of one model on one platform at one batch size."""

    platform: str
    model_name: str
    batch_size: int
    latency_s: float          # end-to-end latency of the whole batch
    per_frame_s: float        # latency_s / batch (amortized)

    @property
    def meets_requirement(self) -> bool:
        """Whether the 3 ms per-decision budget holds at batch 1."""
        return self.batch_size == 1 and self.latency_s <= 3e-3


class Platform:
    """Interface: estimate inference latency of a model at a batch size."""

    name = "platform"

    def latency(self, model: Model, batch_size: int = 1) -> PlatformResult:
        raise NotImplementedError

    def _result(self, model: Model, batch_size: int,
                latency_s: float) -> PlatformResult:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return PlatformResult(
            platform=self.name,
            model_name=model.name,
            batch_size=batch_size,
            latency_s=latency_s,
            per_frame_s=latency_s / batch_size,
        )
