"""FPGA SoC platform — measured behaviour of the simulated board."""

from __future__ import annotations

from typing import Optional

from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.precision import uniform_config
from repro.nn.model import Model
from repro.platforms.base import Platform, PlatformResult
from repro.soc.board import AchillesBoard

__all__ = ["FPGAPlatform"]


class FPGAPlatform(Platform):
    """The Arria 10 SoC central node.

    Latency comes from the converted model's cycle-accurate IP estimate
    plus the measured step 1–8 system overhead.  The FPGA processes one
    frame at a time (there is no batching on the IP), so batch latency
    scales linearly — which is fine: the control task is batch-1 by
    construction.
    """

    name = "FPGA SoC (hls4ml)"

    def __init__(self, config: Optional[HLSConfig] = None,
                 include_jitter_mean: bool = True):
        self.config = config
        self.include_jitter_mean = include_jitter_mean

    def board_for(self, model: Model) -> AchillesBoard:
        """Build the board hosting *model* (converted with our config)."""
        config = self.config or uniform_config(16, 7, model=model)
        return AchillesBoard(convert(model, config))

    def latency(self, model: Model, batch_size: int = 1) -> PlatformResult:
        board = board = self.board_for(model)
        per_frame = board.deterministic_latency_s()
        if self.include_jitter_mean:
            per_frame += board.jitter.scale_s
        return self._result(model, batch_size, per_frame * batch_size)
