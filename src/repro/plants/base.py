"""The `Plant` interface: pluggable data substrates for the control loop.

The paper's pipeline — quantized model → Achilles board → trip
controller → actuation — is general, but the reproduction grew up
hard-wired to one workload (beam-loss de-blending, open loop).  A
:class:`Plant` packages everything workload-specific behind one
picklable object:

* **frame synthesis** — a seeded :class:`PlantSession` produces the
  per-tick monitor vectors the hubs deliver,
* **actuation** — ``session.step(record)`` feeds the published decision
  back into the plant state (closed loop) or ignores it (open loop),
* **topology** — :meth:`Plant.hubs` / :meth:`Plant.controller` describe
  how monitors concentrate into hubs and how model outputs become trip
  decisions,
* **ground truth + scoring** — :meth:`PlantSession.quality` folds a run
  record stream into a :class:`ControlQuality` summary (stabilisation
  time, time-to-trip, trip precision/recall, RMS state error).

Plants must be frozen dataclasses (hashable, picklable): a plant rides
a :class:`~repro.serve.workers.FarmSpec` to spawned workers and must
rebuild bit-identically from a pickle round-trip.  All stochasticity
lives in the *session*, derived from an explicit seed — two sessions
with the same seed replay the same trajectory no matter which process
or executor drives them.

This module deliberately imports only numpy: concrete plants pull in
the beam-loss substrate or the cartpole dynamics, never the other way
around.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ControlQuality",
    "Plant",
    "PlantSession",
    "fold_control_metrics",
    "merge_control_dicts",
]

#: Spawn-key namespace for session RNG derivation.  The runtime derives
#: its per-run streams with ``spawn_key=(start,)`` where ``start`` is a
#: frame index (see :func:`repro.soc.runtime.derive_stream_seeds`); the
#: session uses this large constant so the two families can never
#: collide for any realistic frame count.
SESSION_SPAWN_KEY = 0x504C414E54  # "PLANT"


def session_rng(seed: Any) -> np.random.Generator:
    """Derive a plant session's private RNG from a runtime-style seed.

    Mirrors :func:`repro.soc.runtime.derive_stream_seeds`'s coercion
    rules — a ``Generator`` is consumed directly (caller-managed
    state), a ``SeedSequence`` extends its spawn key, anything else
    (int / None) seeds a fresh sequence — but under the disjoint
    :data:`SESSION_SPAWN_KEY` namespace, so drawing the session stream
    never perturbs the hub/board jitter streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        child = np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (SESSION_SPAWN_KEY,))
    else:
        child = np.random.SeedSequence(entropy=seed,
                                       spawn_key=(SESSION_SPAWN_KEY,))
    return np.random.default_rng(child)


@dataclass(frozen=True)
class ControlQuality:
    """Control-quality summary of one run (plant-agnostic shape).

    Fields that do not apply to a plant (stabilisation for an open-loop
    substrate, ground-truth scores when the plant never saw the frames)
    are ``nan`` — never silently zero, which would read as "perfectly
    fast" or "always wrong".
    """

    frames: int
    trips: int
    trip_rate: float
    #: Seconds (on the digitizer grid) until the first trip; ``nan``
    #: when no frame tripped.
    time_to_first_trip_s: float
    #: Seconds until the plant state first entered (and held) its
    #: stabilisation band; ``nan`` for open-loop plants or runs that
    #: never stabilised.
    stabilization_time_s: float
    stabilized: bool
    #: Decision quality against the plant's per-frame ground truth
    #: (``nan`` when no truth was available for the run).
    trip_precision: float
    trip_recall: float
    #: RMS of the plant's primary state error (``nan`` for plants with
    #: no continuous state, e.g. open-loop classification substrates).
    rms_state_error: float
    mean_latency_s: float
    deadline_miss_rate: float

    @classmethod
    def from_records(cls, records: Sequence[Any],
                     period_s: float) -> "ControlQuality":
        """Generic record-stream summary (no plant state, no truth)."""
        g = summarize_records(records, period_s)
        return cls(stabilization_time_s=math.nan, stabilized=False,
                   trip_precision=math.nan, trip_recall=math.nan,
                   rms_state_error=math.nan, **g)

    def render(self) -> str:
        """Multi-line printable summary (skips non-applicable fields)."""
        lines = ["control quality:"]
        lines.append(f"  frames: {self.frames}, trips: {self.trips} "
                     f"({self.trip_rate:.1%})")
        if not math.isnan(self.time_to_first_trip_s):
            lines.append(f"  time to first trip: "
                         f"{self.time_to_first_trip_s * 1e3:.1f} ms")
        if not math.isnan(self.stabilization_time_s):
            lines.append(f"  stabilised in "
                         f"{self.stabilization_time_s * 1e3:.1f} ms")
        elif self.stabilized:
            lines.append("  stabilised")
        if not math.isnan(self.trip_precision):
            lines.append(f"  trip precision/recall: "
                         f"{self.trip_precision:.2f}/{self.trip_recall:.2f}")
        if not math.isnan(self.rms_state_error):
            lines.append(f"  rms state error: {self.rms_state_error:.4f}")
        lines.append(f"  mean latency: {self.mean_latency_s * 1e3:.3f} ms, "
                     f"deadline miss rate: {self.deadline_miss_rate:.2%}")
        return "\n".join(lines)


def summarize_records(records: Sequence[Any],
                      period_s: float) -> Dict[str, Any]:
    """The generic (plant-independent) :class:`ControlQuality` fields."""
    n = len(records)
    trips = [r for r in records if r.decision.machine is not None]
    first = math.nan
    if trips:
        first = trips[0].frame_index * period_s + trips[0].total_latency_s
    misses = sum(1 for r in records if not r.decision.deadline_met)
    mean_latency = (sum(r.total_latency_s for r in records) / n
                    if n else math.nan)
    return {
        "frames": n,
        "trips": len(trips),
        "trip_rate": len(trips) / n if n else 0.0,
        "time_to_first_trip_s": first,
        "mean_latency_s": mean_latency,
        "deadline_miss_rate": misses / n if n else 0.0,
    }


def score_against_truth(decisions: Sequence[Optional[str]],
                        truth: Sequence[Optional[str]],
                        ) -> Tuple[float, float]:
    """Micro-averaged trip precision/recall over machine labels.

    ``None`` entries are no-trip frames; a correct trip means the
    decided machine equals the true machine.  Returns ``(nan, nan)``
    when nothing was decided / true respectively... precisely: each is
    ``nan`` only when its denominator is empty.
    """
    if len(decisions) != len(truth):
        raise ValueError(f"{len(decisions)} decisions vs "
                         f"{len(truth)} truth labels")
    decided = sum(1 for d in decisions if d is not None)
    trips_true = sum(1 for t in truth if t is not None)
    correct = sum(1 for d, t in zip(decisions, truth)
                  if d is not None and d == t)
    precision = correct / decided if decided else math.nan
    recall = correct / trips_true if trips_true else math.nan
    return precision, recall


class PlantSession(ABC):
    """One seeded episode of a plant: state, frames, actuation, truth.

    A session is single-threaded and stateful; every executor drives it
    the same way — synthesize a frame, run it through the stack, feed
    the resulting record (or raw output) back — so the trajectory is a
    pure function of (plant, seed, decision stream) and bit-identity
    across executors follows from record-stream bit-identity.
    """

    plant: "Plant"

    @abstractmethod
    def next_frame(self) -> np.ndarray:
        """Synthesize the next tick's monitor vector (1-D float64)."""

    @abstractmethod
    def apply(self, action: Optional[str]) -> None:
        """Advance the plant one tick under *action* (a machine name or
        ``None`` for no trip).  Open-loop plants ignore the action —
        their frame cursor advances in :meth:`next_frame`."""

    def step(self, record: Any) -> None:
        """Feed one :class:`~repro.soc.runtime.FrameRecord` back.

        The default actuation rule: the decided machine acts on the
        plant only when the decision actually reached the actuation
        network (``record.published``); abstained and dead-lettered
        frames apply no action.
        """
        machine = record.decision.machine if record.published else None
        self.apply(machine)

    def step_output(self, output: np.ndarray) -> None:
        """Feed one raw (dequantized) model output back — the board-level
        loop, with no runtime/controller in between."""
        self.apply(self.plant.action_from_output(output))

    @abstractmethod
    def quality(self, records: Sequence[Any]) -> ControlQuality:
        """Score the episode's record stream (plant-specific fields
        filled from session state and ground truth)."""


class Plant(ABC):
    """A picklable workload description (see module docstring).

    Concrete plants are frozen dataclasses; everything stochastic lives
    in :meth:`session`.
    """

    #: Human-readable workload name (used in reports and benchmarks).
    name: str = "plant"
    #: Whether published decisions feed back into the next frame.
    closed_loop: bool = False

    @property
    @abstractmethod
    def machine_names(self) -> Tuple[str, ...]:
        """Actuation channels, in controller output order."""

    @property
    def expected_monitors(self) -> Optional[int]:
        """Monitor count a model must match (``None`` = any)."""
        return None

    @abstractmethod
    def hubs(self, n_monitors: int):
        """The :class:`~repro.beamloss.hubs.HubNetwork` concentrating
        *n_monitors* monitors for this plant."""

    @abstractmethod
    def controller(self):
        """A fresh :class:`~repro.beamloss.controller.TripController`
        turning model outputs into actions for this plant."""

    @abstractmethod
    def session(self, seed: Any = 0) -> PlantSession:
        """Start a seeded episode."""

    @abstractmethod
    def default_model(self):
        """A ready-to-run model for this plant (float
        :class:`~repro.nn.Model`; callers convert per their config)."""

    def action_from_output(self, output: np.ndarray) -> Optional[str]:
        """Map one raw model output to an action, exactly as the trip
        controller would (machine name or ``None``)."""
        decision = self.controller().decide(output)
        return decision.machine


# ----------------------------------------------------------------------
# Aggregation / observability folding
# ----------------------------------------------------------------------
def fold_control_metrics(metrics, quality: ControlQuality) -> None:
    """Mirror *quality* into an obs metrics registry as gauges.

    Keys are ``control.<field>``; ``nan`` fields are skipped (a gauge
    that never existed reads as "not applicable", a ``nan`` gauge
    poisons downstream aggregation).
    """
    for f in fields(quality):
        value = getattr(quality, f.name)
        if isinstance(value, bool):
            value = 1.0 if value else 0.0
        value = float(value)
        if math.isnan(value):
            continue
        metrics.set_gauge(f"control.{f.name}", value)


def _weighted_nanmean(pairs: List[Tuple[float, int]]) -> float:
    num = den = 0.0
    for value, weight in pairs:
        if value is None or math.isnan(value):
            continue
        num += value * weight
        den += weight
    return num / den if den else math.nan


def merge_control_dicts(dicts: Sequence[Optional[Dict[str, Any]]],
                        ) -> Optional[Dict[str, Any]]:
    """Fold per-shard ``dataclasses.asdict(ControlQuality)`` payloads.

    Each shard is an independent episode, so: counts sum, rates and
    latencies average frame-weighted, ``time_to_first_trip_s`` is the
    earliest across shards, ``stabilization_time_s`` the latest (the
    farm is stable when its slowest shard is), ``stabilized`` requires
    every shard, and the RMS error recombines through the sum of
    squares.  ``None`` entries (shards without control scoring) are
    ignored; all-``None`` returns ``None``.
    """
    ds = [d for d in dicts if d]
    if not ds:
        return None
    frames = sum(int(d.get("frames", 0)) for d in ds)
    trips = sum(int(d.get("trips", 0)) for d in ds)
    firsts = [d.get("time_to_first_trip_s", math.nan) for d in ds]
    firsts = [t for t in firsts if t is not None and not math.isnan(t)]
    stabs = [d.get("stabilization_time_s", math.nan) for d in ds]
    stabs_known = [t for t in stabs if t is not None and not math.isnan(t)]
    rms_pairs = [(d.get("rms_state_error", math.nan), d.get("frames", 0))
                 for d in ds]
    ms = _weighted_nanmean([(r * r if r is not None else math.nan, w)
                            for r, w in rms_pairs])
    return {
        "frames": frames,
        "trips": trips,
        "trip_rate": trips / frames if frames else 0.0,
        "time_to_first_trip_s": min(firsts) if firsts else math.nan,
        "stabilization_time_s": (max(stabs_known)
                                 if stabs_known and len(stabs_known) == len(ds)
                                 else math.nan),
        "stabilized": all(bool(d.get("stabilized")) for d in ds),
        "trip_precision": _weighted_nanmean(
            [(d.get("trip_precision", math.nan), d.get("frames", 0))
             for d in ds]),
        "trip_recall": _weighted_nanmean(
            [(d.get("trip_recall", math.nan), d.get("frames", 0))
             for d in ds]),
        "rms_state_error": math.sqrt(ms) if not math.isnan(ms) else math.nan,
        "mean_latency_s": _weighted_nanmean(
            [(d.get("mean_latency_s", math.nan), d.get("frames", 0))
             for d in ds]),
        "deadline_miss_rate": _weighted_nanmean(
            [(d.get("deadline_miss_rate", math.nan), d.get("frames", 0))
             for d in ds]),
    }
