"""Pluggable workloads for the control stack (see docs/plants.md).

A :class:`Plant` owns everything workload-specific — frame synthesis,
hub topology, the trip controller, actuation feedback and
control-quality scoring — so the facade, the chaos layer and the
serving farm stay plant-generic.  Two plants ship:

* :class:`BeamLossPlant` — the paper's open-loop de-blending workload
  (bit-identical to the pre-plant facade wiring),
* :class:`CartpolePlant` — a closed-loop inverted pendulum driven by a
  hand-crafted quantized MLP.
"""

from repro.plants.base import (
    ControlQuality,
    Plant,
    PlantSession,
    fold_control_metrics,
    merge_control_dicts,
)
from repro.plants.beamloss import BeamLossPlant
from repro.plants.cartpole import CartpolePlant
from repro.plants.loop import run_closed_loop

__all__ = [
    "Plant",
    "PlantSession",
    "ControlQuality",
    "BeamLossPlant",
    "CartpolePlant",
    "run_closed_loop",
    "fold_control_metrics",
    "merge_control_dicts",
]
