"""`BeamLossPlant`: the paper's de-blending workload as a plant.

A pure re-packaging of the substrate the facade used to wire by hand —
the reference de-blending dataset for frames, seven-hub concentration,
and the MI/RR trip controller.  **Behavior-preserving by construction
and by test**: :meth:`BeamLossPlant.hubs` / :meth:`controller` rebuild
exactly what :func:`repro.core.api.build_runtime` built before the
plant interface existed, and ``tests/test_plants.py`` replays golden
pre-refactor run records (sequential, compiled, farm) against the
refactored stack bit for bit.

Open loop: trips mitigate the lossy machine but never change the beam,
so :meth:`~_BeamLossSession.apply` ignores the action and the frames
simply cycle the evaluation split.  Ground truth comes from the
substrate's blended targets
(:func:`repro.beamloss.metrics.ground_truth_machines`), which gives the
quality report real trip precision/recall even though nothing feeds
back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.beamloss.controller import TripController
from repro.beamloss.hubs import HubNetwork
from repro.plants.base import (
    ControlQuality,
    Plant,
    PlantSession,
    score_against_truth,
    summarize_records,
)
from repro.soc.board import FRAME_PERIOD_S

__all__ = ["BeamLossPlant"]

#: The facility's hub count; clamped to the monitor count for small
#: models (matches the pre-plant facade default).
DEFAULT_N_HUBS = 7

#: Reference dataset geometry (matches
#: :data:`repro.pretrained.bundle.REFERENCE_DATASET_KWARGS`).
_REFERENCE_SHAPE = (1500, 300, 1000, 0)

#: Process-wide dataset cache keyed by (n_train, n_val, n_eval, seed) —
#: synthesis is deterministic, so sharing is safe, and plants stay
#: lightweight to pickle (the cache never rides the plant).
_DATASET_CACHE: dict = {}


@dataclass(frozen=True)
class BeamLossPlant(Plant):
    """The beam-loss de-blending workload (open loop).

    Parameters
    ----------
    n_hubs:
        Hub concentrator count; ``None`` uses the facility's 7, clamped
        to the model's monitor count (exactly the old facade default).
    min_votes / probability_threshold:
        Trip-controller policy (see
        :class:`~repro.beamloss.controller.TripController`).
    n_train / n_val / n_eval / dataset_seed:
        De-blending dataset geometry; defaults are the reference
        dataset every pretrained artefact was trained against.
    """

    n_hubs: Optional[int] = None
    min_votes: int = 3
    probability_threshold: float = 0.5
    n_train: int = 1500
    n_val: int = 300
    n_eval: int = 1000
    dataset_seed: int = 0

    name = "beamloss"
    closed_loop = False

    @property
    def machine_names(self) -> Tuple[str, ...]:
        return ("MI", "RR")

    def hubs(self, n_monitors: int) -> HubNetwork:
        n_hubs = (self.n_hubs if self.n_hubs is not None
                  else min(DEFAULT_N_HUBS, n_monitors))
        return HubNetwork(n_monitors=n_monitors, n_hubs=n_hubs)

    def controller(self) -> TripController:
        return TripController(
            machine_names=self.machine_names,
            probability_threshold=self.probability_threshold,
            min_votes=self.min_votes,
        )

    # ------------------------------------------------------------------
    def dataset(self):
        """The plant's :class:`~repro.beamloss.dataset.DeblendingDataset`
        (process-cached; the reference geometry reuses the pretrained
        bundle's cached dataset)."""
        key = (self.n_train, self.n_val, self.n_eval, self.dataset_seed)
        cached = _DATASET_CACHE.get(key)
        if cached is not None:
            return cached
        if key == _REFERENCE_SHAPE:
            from repro.pretrained.bundle import reference_dataset

            ds = reference_dataset()
        else:
            from repro.beamloss.dataset import make_dataset

            ds = make_dataset(n_train=self.n_train, n_val=self.n_val,
                              n_eval=self.n_eval, seed=self.dataset_seed)
        _DATASET_CACHE[key] = ds
        return ds

    def default_model(self):
        """The pretrained reference U-Net (trained on first use)."""
        from repro.pretrained.bundle import load_reference_bundle

        return load_reference_bundle(train_if_missing=True).unet

    def session(self, seed: Any = 0) -> "_BeamLossSession":
        return _BeamLossSession(self, seed)


class _BeamLossSession(PlantSession):
    """Cycles the evaluation split; open loop (actions ignored)."""

    def __init__(self, plant: BeamLossPlant, seed: Any):
        self.plant = plant
        ds = plant.dataset()
        self._x = np.asarray(ds.x_eval, dtype=np.float64)
        from repro.beamloss.metrics import ground_truth_machines

        n_machines = len(plant.machine_names)
        targets = np.asarray(ds.y_eval).reshape(
            len(self._x), -1, n_machines)
        self._eval_truth = ground_truth_machines(
            targets, machine_names=plant.machine_names,
            threshold=plant.probability_threshold,
            min_monitors=plant.min_votes)
        self._i = 0
        self.truth: list = []
        # Seeded for interface symmetry; the open-loop substrate is
        # fully precomputed, so the stream is unused.
        del seed

    def next_frame(self) -> np.ndarray:
        idx = self._i % len(self._x)
        self._i += 1
        self.truth.append(self._eval_truth[idx])
        return self._x[idx]

    def apply(self, action: Optional[str]) -> None:
        pass  # open loop: the beam does not notice the trip

    def quality(self, records: Sequence[Any]) -> ControlQuality:
        period = FRAME_PERIOD_S
        g = summarize_records(records, period)
        truth = self.truth[:len(records)]
        if len(truth) == len(records) and truth:
            precision, recall = score_against_truth(
                [r.decision.machine for r in records], truth)
        else:
            precision = recall = math.nan
        return ControlQuality(
            stabilization_time_s=math.nan,
            stabilized=False,
            trip_precision=precision,
            trip_recall=recall,
            rms_state_error=math.nan,
            **g,
        )
