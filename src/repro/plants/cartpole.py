"""`CartpolePlant`: a closed-loop inverted-pendulum control scenario.

The hls4ml-on-cartpole line of work deploys a small quantized MLP that
balances an inverted pendulum from an edge device; this plant rebuilds
that scenario on our stack so the *whole* reproduction — fixed-point
conversion, the graph compiler, fault injection + taint-aware
speculation, the serving farm — runs against a workload where the
model's output changes the next frame.

* **Plant**: the classic discrete-time cartpole (cart position ``x``,
  pole angle ``theta`` and their rates), Euler-integrated at ``tau``
  seconds per digitizer tick, with a seeded Gaussian disturbance force
  every tick.  Leaving the track or dropping the pole past the failure
  angle resets the episode (counted, never hidden).
* **Frames**: the scaled 4-state, tiled twice → 8 monitors over 2 hubs
  (the smallest layout that still exercises hub concentration and
  gives the vote ladder 4 monitor pairs).
* **Controller model**: a hand-crafted 2-dense MLP.  The hidden layer
  computes the PD control signal ``u = k · state`` and its negation
  (ReLU splits the sign); the output layer maps them to per-monitor
  vote probabilities ``sigmoid(±g·u − b)`` so the trip controller's
  ``>0.5`` vote threshold becomes a symmetric deadband ``|u| > b/g``.
  A ``LEFT``/``RIGHT`` trip applies ``∓/± force_mag`` newtons; no trip
  (deadband, abstention, failed publish) applies nothing — bang-bang
  control with hysteresis, entirely inside the paper's
  model→board→controller pipeline.
* **Ground truth**: the float control law on the unquantized state at
  frame time — ``RIGHT`` beyond the deadband, etc. — so trip
  precision/recall measures the quantized pipeline against the ideal
  controller.

All weights and activations fit comfortably in the default
``ac_fixed<16,7>`` (|values| < 64, resolution 2⁻⁹), so the uniform
conversion is accurate and every compile level is bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.beamloss.controller import TripController
from repro.beamloss.hubs import HubNetwork
from repro.plants.base import (
    ControlQuality,
    Plant,
    PlantSession,
    score_against_truth,
    session_rng,
    summarize_records,
)
from repro.soc.board import FRAME_PERIOD_S

__all__ = ["CartpolePlant"]

#: 12° in radians: the classic failure angle, also the angle scale.
THETA_LIMIT = 12 * 2 * math.pi / 360


@dataclass(frozen=True)
class CartpolePlant(Plant):
    """Closed-loop cartpole (see module docstring).

    The physics parameters are the classic benchmark values; the
    control fields shape the hand-crafted MLP
    (:meth:`default_model`) and the ground-truth law.
    """

    # -- physics -------------------------------------------------------
    gravity: float = 9.81
    masscart: float = 1.0
    masspole: float = 0.1
    length: float = 0.5            # half the pole length
    force_mag: float = 10.0
    tau: float = 0.02              # plant seconds per digitizer tick
    x_limit: float = 2.4
    #: Std-dev of the per-tick Gaussian disturbance force (newtons).
    disturbance_std: float = 0.4
    #: Std-dev of the initial / post-reset angle and angular rate.
    init_std: float = 0.05

    # -- controller ----------------------------------------------------
    #: PD gains over the scaled state (x, ẋ, θ, θ̇).
    gains: Tuple[float, float, float, float] = (0.8, 1.6, 12.0, 5.0)
    #: Vote-probability slope and offset: monitor probability is
    #: ``sigmoid(±vote_gain·u − vote_bias)``, so the trip deadband is
    #: ``|u| > vote_bias / vote_gain``.
    vote_gain: float = 2.0
    vote_bias: float = 1.0
    min_votes: int = 2
    probability_threshold: float = 0.5

    # -- stabilisation band --------------------------------------------
    stab_theta: float = 0.06       # rad
    stab_omega: float = 0.35       # rad/s
    stab_frames: int = 25

    name = "cartpole"
    closed_loop = True

    @property
    def machine_names(self) -> Tuple[str, ...]:
        return ("LEFT", "RIGHT")

    @property
    def expected_monitors(self) -> int:
        return 8

    @property
    def deadband(self) -> float:
        """Control-signal magnitude below which no trip fires."""
        return self.vote_bias / self.vote_gain

    @property
    def state_scales(self) -> Tuple[float, float, float, float]:
        """Per-component normalisation of the monitor features."""
        return (self.x_limit, 3.0, THETA_LIMIT, 2.0)

    def hubs(self, n_monitors: int) -> HubNetwork:
        return HubNetwork(n_monitors=n_monitors,
                          n_hubs=min(2, n_monitors))

    def controller(self) -> TripController:
        return TripController(
            machine_names=self.machine_names,
            probability_threshold=self.probability_threshold,
            min_votes=self.min_votes,
        )

    # ------------------------------------------------------------------
    def control_signal(self, state: Sequence[float]) -> float:
        """The float PD law ``u = k · scaled(state)`` (ground truth)."""
        return float(sum(k * s / c for k, s, c
                         in zip(self.gains, state, self.state_scales)))

    def ideal_action(self, state: Sequence[float]) -> Optional[str]:
        """What the ideal (float, deadbanded) controller would do."""
        u = self.control_signal(state)
        if u > self.deadband:
            return "RIGHT"
        if u < -self.deadband:
            return "LEFT"
        return None

    def default_model(self):
        """The hand-crafted vote MLP (float; convert per your config)."""
        from repro.nn.layers.activations import ReLU, Sigmoid
        from repro.nn.layers.dense import Dense
        from repro.nn.layers.input import Input
        from repro.nn.model import Model

        inp = Input((8,), name="cartpole_state")
        hidden = Dense(2, use_bias=False, name="pd_split")
        h = ReLU(name="pd_relu")(hidden(inp))
        votes = Dense(8, name="vote_dense")
        out = Sigmoid(name="vote_sigmoid")(votes(h))
        model = Model(inp, out, name="cartpole_controller")

        # Hidden: h = (relu(u), relu(-u)) — gains on the first state
        # copy, zeros on the tiled second copy.
        k1 = np.zeros((8, 2))
        k1[:4, 0] = np.asarray(self.gains, dtype=np.float64)
        k1[:, 1] = -k1[:, 0]
        hidden.params["kernel"] = k1

        # Output (monitor-major, machines (LEFT, RIGHT)):
        #   z_LEFT  = g·(h1 − h0) − b = −g·u − b
        #   z_RIGHT = g·(h0 − h1) − b = +g·u − b
        g, b = self.vote_gain, self.vote_bias
        k2 = np.zeros((2, 8))
        for m in range(4):
            k2[0, 2 * m] = -g
            k2[1, 2 * m] = +g
            k2[0, 2 * m + 1] = +g
            k2[1, 2 * m + 1] = -g
        votes.params["kernel"] = k2
        votes.params["bias"] = np.full(8, -b, dtype=np.float64)
        return model

    def session(self, seed: Any = 0) -> "_CartpoleSession":
        return _CartpoleSession(self, seed)


class _CartpoleSession(PlantSession):
    """One seeded cartpole episode."""

    def __init__(self, plant: CartpolePlant, seed: Any):
        self.plant = plant
        self._rng = session_rng(seed)
        self.state = np.zeros(4)  # x, x_dot, theta, theta_dot
        self._reset_pole()
        self.failures = 0
        self.truth: List[Optional[str]] = []
        self._theta_hist: List[float] = []
        self._omega_hist: List[float] = []

    def _reset_pole(self) -> None:
        self.state[:] = (0.0, 0.0,
                         self._rng.normal(0.0, self.plant.init_std),
                         self._rng.normal(0.0, self.plant.init_std))

    # ------------------------------------------------------------------
    def next_frame(self) -> np.ndarray:
        p = self.plant
        scaled = np.asarray(self.state) / np.asarray(p.state_scales)
        self.truth.append(p.ideal_action(self.state))
        self._theta_hist.append(float(self.state[2]))
        self._omega_hist.append(float(self.state[3]))
        return np.tile(scaled, 2).astype(np.float64)

    def apply(self, action: Optional[str]) -> None:
        p = self.plant
        # One disturbance draw per tick, action or not, so the noise
        # stream is a pure function of (plant, seed, tick index).
        disturbance = self._rng.normal(0.0, p.disturbance_std)
        force = disturbance
        if action == "RIGHT":
            force += p.force_mag
        elif action == "LEFT":
            force -= p.force_mag

        x, x_dot, theta, theta_dot = self.state
        costh, sinth = math.cos(theta), math.sin(theta)
        total_mass = p.masscart + p.masspole
        polemass_length = p.masspole * p.length
        temp = (force + polemass_length * theta_dot ** 2 * sinth) / total_mass
        theta_acc = (p.gravity * sinth - costh * temp) / (
            p.length * (4.0 / 3.0 - p.masspole * costh ** 2 / total_mass))
        x_acc = temp - polemass_length * theta_acc * costh / total_mass
        self.state[:] = (x + p.tau * x_dot,
                         x_dot + p.tau * x_acc,
                         theta + p.tau * theta_dot,
                         theta_dot + p.tau * theta_acc)

        if abs(self.state[2]) > THETA_LIMIT or abs(self.state[0]) > p.x_limit:
            self.failures += 1
            self._reset_pole()

    # ------------------------------------------------------------------
    def _stabilization_frame(self) -> Optional[int]:
        """Index of the tick completing the first in-band streak."""
        p = self.plant
        streak = 0
        for i, (th, om) in enumerate(zip(self._theta_hist,
                                         self._omega_hist)):
            if abs(th) < p.stab_theta and abs(om) < p.stab_omega:
                streak += 1
                if streak >= p.stab_frames:
                    return i
            else:
                streak = 0
        return None

    def quality(self, records: Sequence[Any]) -> ControlQuality:
        period = FRAME_PERIOD_S
        g = summarize_records(records, period)
        n = len(records)
        truth = self.truth[:n]
        if truth and len(truth) == n:
            precision, recall = score_against_truth(
                [r.decision.machine for r in records], truth)
        else:
            precision = recall = math.nan
        thetas = np.asarray(self._theta_hist[:n])
        rms = float(np.sqrt(np.mean(thetas ** 2))) if n else math.nan
        stab_i = self._stabilization_frame()
        return ControlQuality(
            stabilization_time_s=(math.nan if stab_i is None
                                  else (stab_i + 1) * period),
            stabilized=stab_i is not None,
            trip_precision=precision,
            trip_recall=recall,
            rms_state_error=rms,
            **g,
        )
