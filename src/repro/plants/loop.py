"""Closed-loop driving: one frame per tick, actuation fed back.

Open-loop runs hand the runtime a whole frame block at once — the block
is known up front, so the batched/compiled fast path covers it in one
precompute.  A *closed-loop* plant makes frame ``i+1`` depend on the
published decision of frame ``i``, so the stream must be driven one
frame at a time:

* each tick synthesizes exactly one frame from the session,
* the runtime processes it as a 1-frame block (every executor tier —
  naive, batched, compiled, speculative — handles ``n == 1`` through
  its normal path, so the bit-identity contract carries over
  unchanged),
* the resulting record actuates the plant before the next frame.

Determinism across executors and processes: the runtime derives its
per-block streams from ``(seed, start_frame)``
(:func:`~repro.soc.runtime.derive_stream_seeds`), and here ``start``
advances 0, 1, 2, … exactly as it would for any framing of the same
stream — so a closed-loop run is a pure function of (plant, model,
config, seed), wherever it executes.  Within a serving shard the loop
runs in order on one replica, which is what lets the farm extend the
bit-identity contract to closed-loop plants
(:meth:`~repro.serve.farm.ShardedNodeFarm.serve_plant`).
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.plants.base import PlantSession

__all__ = ["run_closed_loop"]


def run_closed_loop(runtime, session: PlantSession, n_frames: int, *,
                    seed: Any = 0) -> List[Any]:
    """Drive *n_frames* ticks of *session* through *runtime*.

    Returns the :class:`~repro.soc.runtime.FrameRecord` list (also
    appended to ``runtime.records``, like ``runtime.run``).  The
    runtime must start with no unrelated record history for the stream
    to be reproducible — callers reuse a runtime only to *continue* the
    same session.
    """
    if n_frames < 0:
        raise ValueError(f"n_frames must be >= 0, got {n_frames}")
    records: List[Any] = []
    for _ in range(n_frames):
        frame = np.asarray(session.next_frame(), dtype=np.float64)
        if frame.ndim != 1:
            raise ValueError(
                f"session.next_frame() must be 1-D, got {frame.shape}")
        recs = runtime.run(frame[None, :], seed=seed)
        session.step(recs[0])
        records.extend(recs)
    return records
