"""HLS conversion configuration: precision and reuse per layer.

Follows hls4ml's config model: a global default plus per-layer overrides.
Each layer gets

* ``weight`` — format for weights/biases (quantized once at convert time),
* ``result`` — format of the layer's output stream,
* ``accum`` — accumulator format (defaults to a wide, safe format),
* ``reuse_factor`` — how many times one multiplier is time-shared
  (paper Section IV-D: "the higher the reuse factor, the less parallel
  the implementation").

The deployed design's values (Table III): default reuse 32, dense &
sigmoid layers 260, default precision ``ac_fixed<16,7>`` with layer-based
integer-bit overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.fixed import FixedPointFormat, Overflow, Rounding

__all__ = ["LayerConfig", "HLSConfig", "DEFAULT_PRECISION", "DEFAULT_REUSE_FACTOR"]

#: The paper's default precision (Table III).
DEFAULT_PRECISION = FixedPointFormat(16, 7, rounding=Rounding.RND,
                                     overflow=Overflow.WRAP)
#: The paper's default reuse factor (Table III).
DEFAULT_REUSE_FACTOR = 32

#: Accumulators default to a wide format that cannot realistically
#: overflow (hls4ml's behaviour when accum_t is left unset).
WIDE_ACCUM = FixedPointFormat(54, 28, rounding=Rounding.TRN,
                              overflow=Overflow.SAT)


@dataclass(frozen=True)
class LayerConfig:
    """Per-layer HLS knobs (missing fields fall back to the model default)."""

    weight: Optional[FixedPointFormat] = None
    result: Optional[FixedPointFormat] = None
    accum: Optional[FixedPointFormat] = None
    reuse_factor: Optional[int] = None

    def merged_over(self, default: "LayerConfig") -> "LayerConfig":
        """This config with ``None`` fields taken from *default*."""
        return LayerConfig(
            weight=self.weight or default.weight,
            result=self.result or default.result,
            accum=self.accum or default.accum,
            reuse_factor=self.reuse_factor
            if self.reuse_factor is not None
            else default.reuse_factor,
        )


@dataclass
class HLSConfig:
    """Model-wide conversion configuration.

    Parameters
    ----------
    default:
        Fallback :class:`LayerConfig`; its fields must all be set.
    layers:
        Per-layer-name overrides.
    clock_hz:
        Target clock (paper: 100 MHz).
    strategy:
        Free-form label used in reports ("uniform", "layer-based", ...).
    """

    default: LayerConfig = field(
        default_factory=lambda: LayerConfig(
            weight=DEFAULT_PRECISION,
            result=DEFAULT_PRECISION,
            accum=WIDE_ACCUM,
            reuse_factor=DEFAULT_REUSE_FACTOR,
        )
    )
    layers: Dict[str, LayerConfig] = field(default_factory=dict)
    clock_hz: float = 100e6
    strategy: str = "uniform"

    def __post_init__(self):
        for name in ("weight", "result", "accum"):
            if getattr(self.default, name) is None:
                raise ValueError(f"default.{name} must be set")
        if self.default.reuse_factor is None or self.default.reuse_factor < 1:
            raise ValueError("default.reuse_factor must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")

    def for_layer(self, name: str) -> LayerConfig:
        """The fully-resolved config for layer *name*."""
        override = self.layers.get(name, LayerConfig())
        return override.merged_over(self.default)

    def set_layer(self, name: str, **kwargs) -> None:
        """Set override fields for layer *name* (merging with existing)."""
        current = self.layers.get(name, LayerConfig())
        self.layers[name] = replace(current, **kwargs)

    def with_reuse_factor(self, reuse: int, layer_names=None) -> "HLSConfig":
        """Copy of this config with *reuse* applied globally or per layer."""
        if reuse < 1:
            raise ValueError(f"reuse factor must be >= 1, got {reuse}")
        cfg = HLSConfig(
            default=replace(self.default, reuse_factor=reuse)
            if layer_names is None
            else self.default,
            layers=dict(self.layers),
            clock_hz=self.clock_hz,
            strategy=self.strategy,
        )
        if layer_names is not None:
            for name in layer_names:
                cfg.set_layer(name, reuse_factor=reuse)
        return cfg

    def describe(self) -> str:
        """Human-readable dump used by the reports."""
        lines = [
            f"strategy={self.strategy} clock={self.clock_hz / 1e6:.0f}MHz",
            f"default: weight={self.default.weight.spec()} "
            f"result={self.default.result.spec()} reuse={self.default.reuse_factor}",
        ]
        for name in sorted(self.layers):
            cfg = self.for_layer(name)
            lines.append(
                f"  {name}: weight={cfg.weight.spec()} result={cfg.result.spec()} "
                f"reuse={cfg.reuse_factor}"
            )
        return "\n".join(lines)
