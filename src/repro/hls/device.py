"""FPGA device database.

Capacities for the devices the paper's ecosystem touches.  The Arria 10
entry is the Achilles instant-development-kit class part (Arria 10 SX/GX
660); its capacities are chosen so that the paper's Table III utilization
percentages (223,674 ALMs = 89 %, 1,818 M20K = 85 %, 273 DSP = 16 %,
221 pins = 37 %, 3 PLL = 5 %) are consistent with this database — i.e.
the utilization *ratios* printed by our reports use the same denominators
the paper's Quartus fit did.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "ARRIA10_660", "CYCLONE_V", "PYNQ_Z2", "ZCU104"]


@dataclass(frozen=True)
class Device:
    """Capacity description of one FPGA (SoC fabric side).

    ``aluts`` is combinational ALUTs (2 per ALM on Intel parts).
    """

    name: str
    alms: int
    aluts: int
    registers: int
    m20k_blocks: int
    block_memory_bits: int
    dsp_blocks: int
    pins: int
    plls: int

    def __post_init__(self):
        for field_name in ("alms", "aluts", "registers", "m20k_blocks",
                           "block_memory_bits", "dsp_blocks", "pins", "plls"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def utilization(self, used: int, capacity: int) -> float:
        """Utilization ratio (may exceed 1.0 for infeasible designs)."""
        if used < 0:
            raise ValueError(f"used must be >= 0, got {used}")
        return used / capacity


#: Achilles Arria 10 SoC module class device (SX 660 KBU2F40).
#: Denominators back-solved from the paper's Table III percentages.
ARRIA10_660 = Device(
    name="Arria 10 SX 660 (Achilles)",
    alms=251_320,             # 223,674 ALMs reported as 89 %
    aluts=502_640,            # 2 ALUTs per ALM
    registers=1_005_280,      # 4 registers per ALM
    m20k_blocks=2_139,        # 1,818 blocks reported as 85 %
    block_memory_bits=43_579_000,  # 25,275,808 bits reported as 58 %
    dsp_blocks=1_706,         # 273 DSP reported as 16 %
    pins=597,                 # 221 pins reported as 37 %
    plls=60,                  # 3 PLLs reported as 5 %
)

#: The smaller Cyclone V the paper used for early sub-system bring-up.
CYCLONE_V = Device(
    name="Cyclone V SoC 5CSXFC6",
    alms=41_910,
    aluts=83_820,
    registers=167_640,
    m20k_blocks=557,
    block_memory_bits=5_662_720,
    dsp_blocks=112,
    pins=288,
    plls=15,
)

#: Comparison boards from Table I (Xilinx parts; ALM column approximated
#: by LUT pairs for cross-vendor comparisons only).
PYNQ_Z2 = Device(
    name="PYNQ-Z2 (Zynq 7020)",
    alms=26_600,
    aluts=53_200,
    registers=106_400,
    m20k_blocks=140,
    block_memory_bits=4_900_000,
    dsp_blocks=220,
    pins=125,
    plls=4,
)

ZCU104 = Device(
    name="ZCU104 (Zynq UltraScale+ XCZU7EV)",
    alms=115_200,
    aluts=230_400,
    registers=460_800,
    m20k_blocks=312,
    block_memory_bits=11_000_000,
    dsp_blocks=1_728,
    pins=347,
    plls=8,
)
