"""Resource model: ALUTs/ALMs, registers, DSPs, block memory.

The model is structural (derived from the kernels' multiplier counts,
formats and buffer sizes) with calibration constants fitted once against
the paper's published design points — the same way any pre-fit estimator
is tuned against known Quartus results.  The three anchor points are
Table II (ALUT usage of the three precision strategies) and Table III
(the deployed system's full-fit resource row).

Structural rules
----------------
* A MAC layer with per-position multiplications ``m`` and reuse factor
  ``RF`` instantiates ``U = ceil(m / RF)`` multiplier units (flat dense:
  total mults / RF).
* The Quartus fitter places up to ``dsp_budget`` units into hard DSP
  blocks; the rest become constant-coefficient logic multipliers whose
  ALUT cost is linear in width up to 16 bits and quadratic beyond — the
  16→18-bit cliff is why uniform ``ac_fixed<18,10>`` explodes to 115 %
  ALUTs in Table II.
* Mixed per-layer formats (the layer-based strategy) pay a per-unit
  alignment cost proportional to how far the layer's integer grid sits
  from the model default — the 22 % → 31 % delta between uniform<16,7>
  and layer-based<16,x> in Table II.
* Every inter-layer stream is double-buffered in M20K blocks with
  power-of-two depth rounding; weight ROMs of streaming dense layers and
  activation tables are BRAM too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hls.device import ARRIA10_660, Device
from repro.hls.kernels.base import HLSKernel
from repro.hls.model import HLSModel

__all__ = ["CalibrationConstants", "ResourceReport", "estimate_resources",
           "kernel_mult_units"]


@dataclass(frozen=True)
class CalibrationConstants:
    """Fitted cost coefficients (see module docstring for anchors)."""

    #: ALUTs per logic const-mult bit for widths ≤ narrow_width_limit
    alut_per_narrow_mult_bit: float = 1.75
    #: widths above this use the quadratic soft-multiplier cost
    narrow_width_limit: int = 16
    #: ALUTs per (W_w × W_d) product bit-pair for wide soft multipliers
    alut_per_wide_mult_bitpair: float = 0.43
    #: per-unit ALUTs per bit of integer-grid misalignment vs the default
    alut_per_alignment_bit: float = 4.0
    #: pipeline/accumulator registers per multiplier unit
    registers_per_unit: float = 97.0
    #: DSP blocks the fitter may allocate to the IP
    dsp_budget: int = 273
    #: M20K capacity in bits
    m20k_bits: int = 20_480
    #: FIFO padding / control overhead on stream buffer bits
    stream_buffer_bits_multiplier: float = 1.7
    #: full-system ALM fit model: alms = a·ALUT + b·regs + fixed
    alm_from_alut: float = 0.8
    alm_from_regs: float = 0.2
    alm_infrastructure: int = 17_600
    #: registers in the non-IP infrastructure (bridges, control, counters)
    reg_infrastructure: int = 0
    #: pins and PLLs are board-level constants, not model outputs
    pins_used: int = 221
    plls_used: int = 3


DEFAULT_CALIBRATION = CalibrationConstants()


def kernel_mult_units(kernel: HLSKernel) -> int:
    """Multiplier units a kernel instantiates (``ceil(m / RF)``).

    Dense layers always fold their *total* multiplication count through
    the reuse factor, matching hls4ml's Dense resource strategy — the
    folding is a property of the layer kind, not of the output rank.  A
    pointwise dense applied per sequence position (2-D output) shares the
    same unit pool across positions, so routing it through the
    per-position rule undercounts units by a factor of ``positions``.
    """
    if kernel.n_mult_per_position == 0:
        return 0
    if kernel.kind == "dense":
        total = kernel.n_mult_total
        return int(math.ceil(total / kernel.config.reuse_factor))
    return int(math.ceil(kernel.n_mult_per_position / kernel.config.reuse_factor))


def _next_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass
class ResourceReport:
    """Estimated resource usage of one converted model on one device."""

    device: Device
    aluts: int
    registers: int
    dsp_blocks: int
    block_memory_bits: int
    m20k_blocks: int
    alms: int
    per_layer_units: Dict[str, int] = field(default_factory=dict)

    @property
    def alut_fraction(self) -> float:
        """ALUT utilization (can exceed 1.0 — Table II's 115 % row)."""
        return self.device.utilization(self.aluts, self.device.aluts)

    @property
    def alm_fraction(self) -> float:
        return self.device.utilization(self.alms, self.device.alms)

    @property
    def dsp_fraction(self) -> float:
        return self.device.utilization(self.dsp_blocks, self.device.dsp_blocks)

    @property
    def memory_bits_fraction(self) -> float:
        return self.device.utilization(self.block_memory_bits,
                                       self.device.block_memory_bits)

    @property
    def m20k_fraction(self) -> float:
        return self.device.utilization(self.m20k_blocks, self.device.m20k_blocks)

    @property
    def register_fraction(self) -> float:
        return self.device.utilization(self.registers, self.device.registers)

    @property
    def fits(self) -> bool:
        """Whether the design fits the device at all.

        Every budgeted resource class must fit — including registers and
        raw block-memory bits, which bound register-heavy (deep-pipeline)
        and ROM-heavy designs even when their ALUT/DSP shares are small.
        """
        return (
            self.alut_fraction <= 1.0
            and self.alm_fraction <= 1.0
            and self.dsp_fraction <= 1.0
            and self.m20k_fraction <= 1.0
            and self.register_fraction <= 1.0
            and self.memory_bits_fraction <= 1.0
        )


def estimate_resources(
    model: HLSModel,
    device: Device = ARRIA10_660,
    calibration: Optional[CalibrationConstants] = None,
) -> ResourceReport:
    """Estimate the fabric resources of a converted model."""
    c = calibration or DEFAULT_CALIBRATION
    default_fmt = model.config.default.result

    aluts = 0.0
    registers = 0.0
    total_units = 0
    memory_bits = 0
    m20k_blocks = 0
    per_layer_units: Dict[str, int] = {}

    # First pass: unit counts, so the DSP budget can be spread fairly
    # (the fitter soaks up `dsp_budget` units; the remainder become logic
    # multipliers — the cost charged below is on the logic share only).
    for kernel in model.kernels:
        units = kernel_mult_units(kernel)
        per_layer_units[kernel.name] = units
        total_units += units
    logic_share = (
        max(0, total_units - c.dsp_budget) / total_units if total_units else 0.0
    )

    for kernel in model.kernels:
        units = per_layer_units[kernel.name]
        w_fmt = kernel.config.weight
        r_fmt = kernel.config.result
        if units:
            w = w_fmt.width
            d = r_fmt.width
            if max(w, d) <= c.narrow_width_limit:
                mult_cost = c.alut_per_narrow_mult_bit * w
            else:
                mult_cost = c.alut_per_wide_mult_bitpair * w * d
            misalign = abs(w_fmt.integer - default_fmt.integer) + abs(
                r_fmt.integer - default_fmt.integer
            )
            align_cost = c.alut_per_alignment_bit * misalign / 2.0
            aluts += units * logic_share * mult_cost + units * align_cost
            registers += units * c.registers_per_unit

        # --- block memory ---
        # Inter-layer stream: double-buffered feature map, one FIFO per
        # channel (the HLS stream layout — each channel's FIFO occupies
        # at least one M20K, which is why the deployed design uses 1,818
        # RAM blocks at only 58 % bit utilization).
        if kernel.kind != "input":
            depth = _next_pow2(kernel.sequence_positions)
            channels = (
                int(math.prod(kernel.output_shape[1:]))
                if len(kernel.output_shape) > 1
                else max(1, int(kernel.output_shape[0]) // 64)
            )
            per_channel_bits = 2 * depth * r_fmt.width  # ping-pong halves
            buffer_bits = channels * per_channel_bits * c.stream_buffer_bits_multiplier
            memory_bits += int(buffer_bits)
            m20k_blocks += channels * max(
                1, math.ceil(per_channel_bits / c.m20k_bits)
            )
        # Weight ROMs of streaming dense layers.
        if kernel.streams_weights and kernel.weight_words:
            rom_bits = kernel.weight_words * w_fmt.width
            memory_bits += rom_bits
            m20k_blocks += math.ceil(rom_bits / c.m20k_bits)
        # Activation tables.
        if kernel.table_bits:
            memory_bits += kernel.table_bits
            m20k_blocks += max(1, math.ceil(kernel.table_bits / c.m20k_bits))

    # IO buffers (input 260×16 + output 520×16 dual-port RAMs).
    import numpy as np  # local import keeps module import light

    n_in = int(np.prod(model.input_shape))
    n_out = int(np.prod(model.output_shape))
    io_bits = 2 * (n_in + n_out) * 16
    memory_bits += io_bits
    m20k_blocks += max(2, math.ceil(io_bits / c.m20k_bits))

    dsp = min(total_units, c.dsp_budget)
    registers += c.reg_infrastructure
    alms = int(
        c.alm_from_alut * aluts + c.alm_from_regs * registers + c.alm_infrastructure
    )
    return ResourceReport(
        device=device,
        aluts=int(aluts),
        registers=int(registers),
        dsp_blocks=int(dsp),
        block_memory_bits=int(memory_bits),
        m20k_blocks=int(m20k_blocks),
        alms=alms,
        per_layer_units=per_layer_units,
    )
