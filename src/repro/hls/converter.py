"""Keras-analogue → HLS conversion (the hls4ml ``convert_from_keras``
equivalent).

Walks the trained :class:`repro.nn.Model` graph in topological order and
instantiates one :class:`~repro.hls.kernels.base.HLSKernel` per layer,
quantizing weights with each layer's configured format.  Batch-norm
layers are *fused* into a scale/shift kernel using their inference-time
statistics, exactly as hls4ml does.
"""

from __future__ import annotations

from typing import Optional

from repro.hls.config import HLSConfig
from repro.hls.kernels import (
    AvgPoolKernel,
    BatchNormKernel,
    ConcatKernel,
    Conv1DKernel,
    DenseKernel,
    FlattenKernel,
    InputKernel,
    LinearKernel,
    MaxPoolKernel,
    ReLUKernel,
    ReshapeKernel,
    SigmoidKernel,
    SoftmaxKernel,
    TanhKernel,
    UpSampleKernel,
)
from repro.hls.model import HLSModel
from repro.nn.layer import Layer
from repro.nn.layers.activations import Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.input import InputLayer
from repro.nn.layers.merge import Concatenate
from repro.nn.layers.normalization import BatchNormalization
from repro.nn.layers.pooling import AveragePooling1D, MaxPooling1D
from repro.nn.layers.reshape import Flatten, Reshape
from repro.nn.layers.upsampling import UpSampling1D
from repro.nn.model import Model

__all__ = ["convert"]


def _kernel_for(layer: Layer, config: HLSConfig, input_names, input_shapes):
    """Instantiate the kernel matching *layer*'s type."""
    cfg = config.for_layer(layer.name)
    if isinstance(layer, Dense):
        return DenseKernel(
            layer.name, cfg, input_names, input_shapes,
            kernel=layer.params["kernel"],
            bias=layer.params.get("bias"),
        )
    if isinstance(layer, Conv1D):
        return Conv1DKernel(
            layer.name, cfg, input_names, input_shapes,
            kernel=layer.params["kernel"],
            bias=layer.params.get("bias"),
            padding=layer.padding,
        )
    if isinstance(layer, BatchNormalization):
        scale, shift = layer.inference_scale_shift()
        return BatchNormKernel(layer.name, cfg, input_names, input_shapes,
                               scale=scale, shift=shift)
    if isinstance(layer, ReLU):
        return ReLUKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, Sigmoid):
        return SigmoidKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, Tanh):
        return TanhKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, Softmax):
        return SoftmaxKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, (Linear, Dropout)):
        # Dropout is identity at inference; hls4ml drops it the same way.
        return LinearKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, MaxPooling1D):
        return MaxPoolKernel(layer.name, cfg, input_names, input_shapes,
                             pool_size=layer.pool_size)
    if isinstance(layer, AveragePooling1D):
        return AvgPoolKernel(layer.name, cfg, input_names, input_shapes,
                             pool_size=layer.pool_size)
    if isinstance(layer, UpSampling1D):
        return UpSampleKernel(layer.name, cfg, input_names, input_shapes,
                              size=layer.size)
    if isinstance(layer, Concatenate):
        return ConcatKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, Flatten):
        return FlattenKernel(layer.name, cfg, input_names, input_shapes)
    if isinstance(layer, Reshape):
        return ReshapeKernel(layer.name, cfg, input_names, input_shapes,
                             target_shape=layer.target_shape)
    raise TypeError(
        f"no HLS kernel for layer type {type(layer).__name__} ({layer.name!r})"
    )


def convert(model: Model, config: Optional[HLSConfig] = None) -> HLSModel:
    """Convert a trained network into its fixed-point HLS twin.

    Parameters
    ----------
    model:
        A built (and usually trained) :class:`repro.nn.Model` with a
        single input and single output.
    config:
        Precision/reuse configuration; defaults to the paper's uniform
        ``ac_fixed<16,7>`` with reuse factor 32.
    """
    config = config if config is not None else HLSConfig()
    if len(model.inputs) != 1 or len(model.outputs) != 1:
        raise ValueError("convert supports single-input single-output models")
    kernels = []
    for layer in model.layers:
        if isinstance(layer, InputLayer):
            kernels.append(
                InputKernel(layer.name, config.for_layer(layer.name),
                            shape=layer.shape)
            )
            continue
        input_names = [ref.layer.name for ref in layer.inbound]
        input_shapes = [ref.shape for ref in layer.inbound]
        kernels.append(_kernel_for(layer, config, input_names, input_shapes))
    return HLSModel(kernels, config, name=f"{model.name}_hls")
