"""hls4ml analogue: NN → bit-accurate fixed-point HLS model.

This package mirrors the role hls4ml + the Intel HLS compiler play in the
paper's flow:

* :class:`HLSConfig` — per-layer precision (``ac_fixed<W, I>``) and reuse
  factors, with the paper's three strategies as constructors
  (uniform, layer-based-from-profile).
* :func:`convert` — translate a trained :class:`repro.nn.Model` into an
  :class:`HLSModel` whose forward pass is bit-accurate fixed-point
  (quantized weights, wrap-around or saturating overflow, LUT-based
  sigmoid) — the exact thing the Intel HLS C-simulation computes.
* :mod:`~repro.hls.profiling` — per-layer max-|value| profiling that
  drives the layer-based precision optimizer (paper Section IV-D).
* :mod:`~repro.hls.latency` — a cycle-level latency model of the
  generated IP (reuse-factor semantics: II = reuse factor), calibrated
  against the paper's measured 1.57 ms U-Net IP latency.
* :mod:`~repro.hls.resources` — ALUT/ALM/DSP/BRAM estimation against an
  Arria 10 device database.
* :mod:`~repro.hls.codegen` — emits the C++-with-HLS-annotations project
  hls4ml would write (never compiled here; structural artefact only).
"""

from repro.hls.config import HLSConfig, LayerConfig
from repro.hls.converter import convert
from repro.hls.model import HLSModel
from repro.hls.profiling import LayerProfile, profile_model
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.latency import LatencyReport, estimate_latency
from repro.hls.resources import ResourceReport, estimate_resources
from repro.hls.device import ARRIA10_660, CYCLONE_V, Device
from repro.hls.report import build_report
from repro.hls.accum import apply_accum_inference, infer_accum_format
from repro.hls.passes.fuse import convert_optimized
from repro.hls.serialization import load_hls_model, save_hls_model

__all__ = [
    "HLSConfig",
    "LayerConfig",
    "convert",
    "HLSModel",
    "LayerProfile",
    "profile_model",
    "uniform_config",
    "layer_based_config",
    "LatencyReport",
    "estimate_latency",
    "ResourceReport",
    "estimate_resources",
    "Device",
    "ARRIA10_660",
    "CYCLONE_V",
    "build_report",
    "infer_accum_format",
    "apply_accum_inference",
    "convert_optimized",
    "save_hls_model",
    "load_hls_model",
]
