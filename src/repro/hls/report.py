"""Combined build report — the analogue of hls4ml's report files.

:func:`build_report` bundles the latency and resource estimates of one
converted model into a printable summary shaped like the paper's
Table III (model summary) rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hls.device import ARRIA10_660, Device
from repro.hls.latency import LatencyReport, estimate_latency
from repro.hls.model import HLSModel
from repro.hls.resources import (
    CalibrationConstants,
    ResourceReport,
    estimate_resources,
)
from repro.utils.tables import Table

__all__ = ["BuildReport", "build_report"]


@dataclass(frozen=True)
class BuildReport:
    """Latency + resources + configuration for one design point."""

    model_name: str
    strategy: str
    latency: LatencyReport
    resources: ResourceReport
    model: Optional[HLSModel] = None

    @property
    def ip_latency_ms(self) -> float:
        """IP-core latency in milliseconds."""
        return self.latency.latency_s * 1e3

    def layer_table(self) -> Table:
        """Per-layer breakdown: cycles, multiplier units, formats —
        the co-design view of where time and area go."""
        t = Table(["Layer", "Kind", "Cycles", "Mult units", "Result type",
                   "Reuse"])
        kernels = {k.name: k for k in self.model.kernels} if self.model else {}
        for name, cycles in self.latency.per_layer_cycles.items():
            units = self.resources.per_layer_units.get(name, 0)
            k = kernels.get(name)
            t.add_row([
                name,
                k.kind if k else "",
                f"{cycles:,}",
                units,
                k.config.result.spec() if k else "",
                k.config.reuse_factor if k else "",
            ])
        return t

    def summary_table(self) -> Table:
        """Render a Table III-style model summary."""
        t = Table(["System Properties", self.model_name])
        r = self.resources
        d = r.device
        t.add_row(["Strategy", self.strategy])
        t.add_row(["FPGA IP Latency", f"{self.ip_latency_ms:.2f} ms"])
        t.add_row(["IP cycles", f"{self.latency.total_cycles:,}"])
        t.add_row([
            "Logic Utilization (ALMs)",
            f"{r.alms:,} ({r.alm_fraction:.0%})",
        ])
        t.add_row(["Total Registers", f"{r.registers:,}"])
        t.add_row([
            "Total Block Memory Bits",
            f"{r.block_memory_bits:,} ({r.memory_bits_fraction:.0%})",
        ])
        t.add_row([
            "Total RAM Blocks",
            f"{r.m20k_blocks:,} ({r.m20k_fraction:.0%})",
        ])
        t.add_row([
            "Total DSP Blocks",
            f"{r.dsp_blocks:,} ({r.dsp_fraction:.0%})",
        ])
        t.add_row(["Device", d.name])
        return t


def build_report(
    model: HLSModel,
    device: Device = ARRIA10_660,
    calibration: Optional[CalibrationConstants] = None,
) -> BuildReport:
    """Run both estimators on *model* and bundle the results."""
    return BuildReport(
        model_name=model.name,
        strategy=model.config.strategy,
        latency=estimate_latency(model),
        resources=estimate_resources(model, device, calibration),
        model=model,
    )
