"""Graph optimization passes applied before kernel generation.

Real hls4ml rewrites the Keras graph before emitting firmware; the two
rewrites that matter for the paper's models are implemented here:

* :func:`fuse_batchnorm` — fold a ``BatchNormalization`` that directly
  follows a Dense/Conv1D layer into that layer's weights and bias, so
  the normalisation costs zero hardware (the standalone batch-norm
  kernel is only needed when the layer ordering prevents fusion, e.g.
  the paper's batch-norm-standardizer variant where it follows the
  input).
* :func:`strip_linear` — remove identity (``Linear``) activations.

Passes operate on a :class:`~repro.hls.passes.graph.LayerGraph`, a small
mutable intermediate representation extracted from the immutable
:class:`repro.nn.Model`; :func:`repro.hls.passes.apply_default_passes`
runs the standard pipeline and reports what changed.
"""

from repro.hls.passes.graph import GraphNode, LayerGraph
from repro.hls.passes.fuse import apply_default_passes, fuse_batchnorm, strip_linear

__all__ = [
    "LayerGraph",
    "GraphNode",
    "fuse_batchnorm",
    "strip_linear",
    "apply_default_passes",
]
