"""A small mutable layer-graph IR for the optimization passes.

``LayerGraph.from_model`` snapshots a built :class:`repro.nn.Model` into
nodes carrying the layer object, its parents and its static shape; the
passes rewrite nodes (merging weights, deleting identities) and
``LayerGraph.consumers``/``replace_node`` keep the wiring consistent.
The rewritten graph is consumed by
:func:`repro.hls.passes.fuse.convert_optimized`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layer import Layer
from repro.nn.layers.input import InputLayer
from repro.nn.model import Model

__all__ = ["GraphNode", "LayerGraph"]


@dataclass
class GraphNode:
    """One layer occurrence in the IR.

    ``params`` holds *copies* of the layer's parameter arrays so passes
    can rewrite them without touching the trained model.
    """

    name: str
    layer: Layer
    parents: List[str]
    output_shape: Tuple[int, ...]
    params: Dict[str, np.ndarray] = field(default_factory=dict)
    #: free-form annotations left by passes ("fused: bn_1", ...)
    notes: List[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        """Layer class name (the pass-matching key)."""
        return type(self.layer).__name__


class LayerGraph:
    """Ordered, mutable mirror of a model's layer DAG."""

    def __init__(self, nodes: List[GraphNode], model: Model):
        self.nodes: List[GraphNode] = nodes
        self.model = model
        self._index = {n.name: n for n in nodes}
        if len(self._index) != len(nodes):
            raise ValueError("duplicate node names")

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: Model) -> "LayerGraph":
        """Snapshot *model* into the IR (parameters copied)."""
        nodes = []
        for layer in model.layers:
            parents = [ref.layer.name for ref in layer.inbound]
            if isinstance(layer, InputLayer):
                parents = ["__input__"]
            nodes.append(GraphNode(
                name=layer.name,
                layer=layer,
                parents=parents,
                output_shape=tuple(layer.output_shape or ()),
                params={k: v.copy() for k, v in layer.params.items()},
            ))
        return cls(nodes, model)

    # ------------------------------------------------------------------
    def node(self, name: str) -> GraphNode:
        """Node lookup by layer name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    def consumers(self, name: str) -> List[GraphNode]:
        """Nodes reading *name*'s output."""
        return [n for n in self.nodes if name in n.parents]

    def remove_node(self, name: str) -> None:
        """Delete a single-parent node, rewiring consumers to its parent."""
        node = self.node(name)
        if len(node.parents) != 1:
            raise ValueError(
                f"can only remove single-parent nodes, {name!r} has "
                f"{len(node.parents)}"
            )
        parent = node.parents[0]
        for consumer in self.consumers(name):
            consumer.parents = [
                parent if p == name else p for p in consumer.parents
            ]
        self.nodes.remove(node)
        del self._index[name]

    @property
    def output_name(self) -> str:
        """Name of the graph's terminal node."""
        return self.nodes[-1].name

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)
