"""The standard pass pipeline: batch-norm fusion + identity stripping.

Fusion math: a Dense/Conv1D computing ``y = Wx + b`` followed by a
batch-norm with folded affine ``z = s·y + t`` is equivalent to a single
layer ``z = (s∘W)x + (s∘b + t)`` where the scale broadcasts over output
channels.  The rewritten weights live in the IR node's ``params``; the
conversion entry point :func:`convert_optimized` builds kernels from
those rewritten parameters, so fused designs cost one kernel fewer and
one multiply less per output.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.model import HLSModel
from repro.hls.passes.graph import LayerGraph
from repro.nn.layers.activations import Linear
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.layers.normalization import BatchNormalization
from repro.nn.model import Model

__all__ = ["fuse_batchnorm", "strip_linear", "apply_default_passes",
           "convert_optimized"]


def fuse_batchnorm(graph: LayerGraph) -> List[str]:
    """Fold eligible batch-norms into their producer; returns the names
    of the batch-norm nodes removed.

    Eligible: the batch-norm's single parent is a Dense or Conv1D whose
    output feeds *only* the batch-norm (no fan-out — fusing across a
    skip connection would change the skip branch's values).
    """
    removed = []
    for node in list(graph.nodes):
        if not isinstance(node.layer, BatchNormalization):
            continue
        parent_name = node.parents[0]
        if parent_name == "__input__":
            continue  # input-standardizer batch-norm: not fusable
        parent = graph.node(parent_name)
        if not isinstance(parent.layer, (Dense, Conv1D)):
            continue
        if len(graph.consumers(parent_name)) != 1:
            continue  # parent output fans out; fusion would corrupt it
        scale, shift = node.layer.inference_scale_shift()
        kernel = parent.params["kernel"]
        # Dense kernels are (fan_in, units); conv kernels (k, cin, cout);
        # the scale broadcasts over the last (output-channel) axis either
        # way.
        parent.params["kernel"] = kernel * scale
        bias = parent.params.get("bias")
        if bias is None:
            bias = np.zeros(kernel.shape[-1])
        parent.params["bias"] = bias * scale + shift
        parent.notes.append(f"fused batchnorm {node.name}")
        graph.remove_node(node.name)
        removed.append(node.name)
    return removed


def strip_linear(graph: LayerGraph) -> List[str]:
    """Remove identity activations; returns the removed node names."""
    removed = []
    for node in list(graph.nodes):
        if isinstance(node.layer, Linear) and node.name != graph.output_name:
            graph.remove_node(node.name)
            removed.append(node.name)
    return removed


def apply_default_passes(graph: LayerGraph) -> List[str]:
    """Run the standard pipeline; returns a human-readable change log."""
    log = []
    for name in fuse_batchnorm(graph):
        log.append(f"fuse_batchnorm: removed {name}")
    for name in strip_linear(graph):
        log.append(f"strip_linear: removed {name}")
    return log


# ----------------------------------------------------------------------
# Conversion of an optimized graph
# ----------------------------------------------------------------------
def convert_optimized(model: Model, config: Optional[HLSConfig] = None,
                      ) -> Tuple[HLSModel, List[str]]:
    """Convert *model* with the default passes applied first.

    Returns ``(hls_model, change_log)``.  Produces fewer kernels than
    :func:`repro.hls.converter.convert` whenever a batch-norm or identity
    was removable, with bit-level behaviour differing only through the
    fused weights' (single) quantization.
    """
    from repro.hls.converter import _kernel_for
    from repro.hls.kernels import InputKernel
    from repro.nn.layers.input import InputLayer

    config = config if config is not None else HLSConfig()
    graph = LayerGraph.from_model(model)
    log = apply_default_passes(graph)

    kernels = []
    for node in graph:
        if isinstance(node.layer, InputLayer):
            kernels.append(InputKernel(
                node.name, config.for_layer(node.name),
                shape=node.layer.shape,
            ))
            continue
        input_shapes = [
            graph.node(p).output_shape for p in node.parents
        ]
        # Build the kernel from the layer *type* but the node's
        # (possibly rewritten) parameters.
        original = node.layer.params
        node.layer.params = node.params
        try:
            kernels.append(_kernel_for(node.layer, config, node.parents,
                                       input_shapes))
        finally:
            node.layer.params = original
    return HLSModel(kernels, config, name=f"{model.name}_hls_opt"), log
