"""Bit-exact graph compiler for :class:`~repro.hls.model.HLSModel`.

The hls4ml flow never executes the network as written: activations become
on-fabric lookup tables, batch-norm folds into the preceding Dense/Conv,
and each layer synthesises to one fused multiply–accumulate–requantize
pipeline.  This module applies the same rewrites to the C-simulation
twin — but only where the rewrite is *provably* bit-identical to the
naive kernel-by-kernel execution:

* **Activation LUTs** — a kernel input stream on an ``ac_fixed<W, I>``
  grid with ``W ≤ 16`` carries at most 65,536 distinct raw words, so
  ``quantize(act(dequantize(raw)))`` is enumerated exhaustively by
  running the *original kernel* over every representable input value.
  The gather is then bit-exact by construction — the same argument
  hls4ml uses for its on-chip tables.

* **Fused MAC + requantize** — when the accumulator cast is provably a
  no-op (grid fine enough and range wide enough for every achievable
  accumulator, or a truncation that cannot move a value across a result
  rounding boundary), the GEMM runs against weights pre-scaled by the
  result format's ``1/lsb`` and emits raw result words in a single
  rounding pass; a following activation LUT gathers straight from those
  words, so the intermediate stream never materialises.

* **Batch-norm folding** — ``scale``/``shift`` fold into the preceding
  Dense/Conv weights when the producer's casts are provably identity on
  every achievable accumulator *and* the folded operands stay exact in
  float64.  Anything unprovable falls back to the unfused kernels
  (recorded in the report) — at 16-bit stream widths the fallback is the
  normal case, exactly like hls4ml refusing an unsafe optimization.

* **Static arena planner** — extends the model's liveness plan into
  first-fit offset assignment inside one preallocated float64 arena:
  every lowered step writes into a precomputed view, and per-step
  integer/pad scratch buffers persist across calls, so the steady-state
  path (repeated calls at one batch size) performs no numpy array
  allocation.  (BLAS-internal workspace is outside our control.)

Every rewrite either carries a proof obligation checked at compile time
or is exact by construction; when a check fails the kernel keeps its
naive ``forward`` (a :class:`_KernelStep`), so ``compile`` can never
change an output bit.  ``tests/test_compile.py`` pins the equivalences
with ``np.array_equal`` — including exhaustively over all raw words of
every LUT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fixed.format import FixedPointFormat, Overflow, Rounding
from repro.fixed.quantize import _round_inplace, quantize, quantize_
from repro.hls.kernels.activation import SoftmaxKernel
from repro.hls.kernels.base import HLSKernel
from repro.hls.kernels.linalg import (BatchNormKernel, Conv1DKernel,
                                      DenseKernel)
from repro.hls.kernels.shape import (ConcatKernel, FlattenKernel,
                                     InputKernel, LinearKernel,
                                     MaxPoolKernel, ReshapeKernel,
                                     UpSampleKernel)

__all__ = ["CompileReport", "CompiledPlan", "compile_model",
           "CONV_FORMULATIONS", "MAX_LUT_BITS"]

#: Largest input-stream width an exhaustive lookup table is built for
#: (2**16 = 65,536 float64 entries = 512 KiB per table).
MAX_LUT_BITS = 16

#: Exact-summation ceiling: sums of grid values are exact in float64 as
#: long as |sum| / grid_lsb stays within the 53-bit mantissa.  Every
#: formulation switch and fold is gated on this bound.
_EXACT_SUM_LIMIT = float(2**53)

#: int64-cast guard for raw-domain emits (one bit of headroom, matching
#: ``repro.fixed.quantize._INT64_LIMIT``).
_RAW_GUARD = float(2**62)

#: Grid widths whose raw values round-trip exactly through float64 —
#: the idempotent-requantization window (same constant as the model's
#: planning pass).
_EXACT_GRID_WIDTH = 52

#: Convolutions with at least this many input channels default to the
#: taps-as-one-flat-GEMM formulation before auto-tuning (one large 2-D
#: contiguous GEMM over the padded buffer plus k shifted adds); below it
#: the im2col GEMM wins (tiny contraction dimension).  Formulation choice
#: cannot affect bits: exact sums are associative — which is also what
#: makes timing-based tuning safe.
_TAPFLAT_MIN_CHANNELS = 8

#: Synthetic batch size / repetitions the conv-formulation auto-tuner
#: times each candidate with at compile time.
_TUNE_BATCH = 16
_TUNE_REPS = 2


# ----------------------------------------------------------------------
# Proof helpers
# ----------------------------------------------------------------------
def _max_abs(fmt: FixedPointFormat) -> float:
    """Largest |value| an in-range stream on *fmt*'s grid can carry."""
    return max(abs(fmt.min_value), abs(fmt.max_value))


def _mac_bound(w2: np.ndarray, bias: Optional[np.ndarray],
               in_max: float) -> float:
    """Worst-case |accumulator| of ``x @ w2 + bias`` over in-range x.

    ``max_j ( Σ_i |W_ij| · in_max + |b_j| )`` — the classic interval
    bound; padding zeros in convolutions only shrink it.
    """
    col = np.abs(w2).sum(axis=0) * in_max
    if bias is not None:
        col = col + np.abs(bias)
    return float(col.max()) if col.size else 0.0


def _cast_identity(fmt: FixedPointFormat, prod_frac: int,
                   bound: float) -> bool:
    """True when quantizing exact sums on the ``2**-prod_frac`` grid with
    ``|value| ≤ bound`` into *fmt* provably changes nothing: the target
    grid is at least as fine and the range covers the bound (so neither
    rounding nor overflow can act)."""
    if fmt.fractional < prod_frac:
        return False
    return bound <= fmt.max_value and -bound >= fmt.min_value


def _accum_cast_skippable(accum: FixedPointFormat, result: FixedPointFormat,
                          prod_frac: int, bound: float) -> bool:
    """True when the accumulator cast cannot change the *result* cast's
    outcome and may be elided.

    Two provable cases:

    * identity — the accumulator grid is finer than the product grid and
      wide enough for the bound (no rounding, no overflow);
    * harmless truncation — the accumulator rounds ``TRN`` (truncate
      toward −∞) without saturating, and its grid contains every decision
      boundary of the result rounding.  Truncating onto a grid that
      contains the boundaries can never move a value across one, and a
      value landing exactly *on* a boundary resolves the same way the
      un-truncated value did for ``RND`` (ties toward +∞) and ``TRN``
      boundaries.  ``RND_CONV``/``RND_ZERO`` ties break non-monotonically,
      so only the identity case applies to them.
    """
    if _cast_identity(accum, prod_frac, bound):
        return True
    if accum.rounding is not Rounding.TRN:
        return False
    if not (bound <= accum.max_value and -bound >= accum.min_value):
        return False  # the truncation would also saturate / wrap
    if bound / accum.lsb > _EXACT_SUM_LIMIT:
        return False  # truncated values would leave the exact window
    if result.rounding is Rounding.RND:
        return accum.fractional >= result.fractional + 1
    if result.rounding is Rounding.TRN:
        return accum.fractional >= result.fractional
    return False


def _build_lut(kernel: HLSKernel, in_fmt: FixedPointFormat) -> np.ndarray:
    """Exhaustive output table of an element-wise kernel, indexed by
    ``raw - in_fmt.raw_min``.

    Built by running the *original* ``forward`` (honouring its planned
    ``requantize`` flag) over every representable input value, so the
    gather is bit-exact by construction.
    """
    raw = np.arange(in_fmt.raw_min, in_fmt.raw_max + 1, dtype=np.int64)
    values = raw.astype(np.float64) * in_fmt.lsb
    table = kernel.forward([values[np.newaxis, :]])
    return np.ascontiguousarray(table[0], dtype=np.float64)


def _lut_span_ok(fmt: FixedPointFormat) -> bool:
    return (fmt.raw_max - fmt.raw_min + 1) <= (1 << MAX_LUT_BITS)


def _overflow_free(in_fmt: FixedPointFormat,
                   out_fmt: FixedPointFormat) -> bool:
    """True when casting any in-range *in_fmt* grid value into *out_fmt*
    provably cannot overflow, so the cast's int64 detour (whose only job
    is the overflow arithmetic) may be replaced by pure float
    scale-round-unscale.

    Every rounding mode moves the scaled value by strictly less than one
    raw unit, so ``±1`` of slack on the scaled range bounds covers all of
    them.  Restricted to widths whose raw values are exact in float64.
    """
    if (in_fmt.width > _EXACT_GRID_WIDTH
            or out_fmt.width > _EXACT_GRID_WIDTH):
        return False
    return (in_fmt.max_value / out_fmt.lsb + 1.0 <= out_fmt.raw_max
            and in_fmt.min_value / out_fmt.lsb - 1.0 >= out_fmt.raw_min)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class CompileReport:
    """What the compiler did — and what it refused to do, with reasons."""

    level: int
    luts: List[str] = field(default_factory=list)
    fused: List[str] = field(default_factory=list)
    folded: List[str] = field(default_factory=list)
    fallbacks: Dict[str, str] = field(default_factory=dict)
    #: per-frame float64 words of the static arena (0 below level 2)
    arena_words: int = 0

    def describe(self) -> str:
        lines = [f"compile level {self.level}: "
                 f"{len(self.luts)} LUTs, {len(self.fused)} fused MACs, "
                 f"{len(self.folded)} folded batch-norms, "
                 f"arena {self.arena_words} words/frame"]
        for name, reason in sorted(self.fallbacks.items()):
            lines.append(f"  fallback {name}: {reason}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Steps
# ----------------------------------------------------------------------
class _Step:
    """One node of the compiled plan.

    ``run(ins, out)`` consumes producer streams and returns the output
    array; when the arena planner assigned this step a slot, ``out`` is a
    preallocated contiguous view the step must write into (and return).
    """

    #: True when the output is a view of the input (shares its slot)
    aliases_input = False
    #: True when the step allocates its own output (no arena slot)
    heap_output = False

    def __init__(self, name: str, inputs: Sequence[str],
                 out_shape: Tuple[int, ...]):
        self.name = name
        self.inputs = list(inputs)
        self.out_shape = tuple(int(d) for d in out_shape)
        #: naive kernel names this step replaces (fused steps list every
        #: kernel they absorbed) — lets profiling reports line compiled
        #: step times up against the naive per-kernel times.
        self.covers = [name]
        self._scr: Dict[tuple, np.ndarray] = {}

    @property
    def out_words(self) -> int:
        return int(np.prod(self.out_shape)) if self.out_shape else 1

    def _scratch(self, tag: str, shape: Tuple[int, ...],
                 dtype=np.float64) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).char)
        buf = self._scr.get(key)
        if buf is None:
            buf = np.empty(shape, dtype)
            self._scr[key] = buf
        return buf

    def _out(self, n: int, out: Optional[np.ndarray]) -> np.ndarray:
        if out is None:
            return np.empty((n,) + self.out_shape)
        return out

    def _cast(self, dst: np.ndarray, fmt: FixedPointFormat, fast: bool,
              tag: str = "raw") -> None:
        """In-place requantization of *dst* onto *fmt*.

        ``fast`` was proven at compile time (:func:`_overflow_free`):
        overflow cannot act, so scale → round → unscale in pure float64
        is bit-identical to the full quantizer — the int64 round trip is
        the identity on integral in-range values, and the overflow stage
        it exists to feed is a no-op.  This matters on strided views
        (concat slices), where the integer detour's modulo is the single
        most expensive pass of the naive cast.
        """
        if fast:
            np.multiply(dst, 1.0 / fmt.lsb, out=dst)
            _round_inplace(dst, fmt.rounding)
            np.multiply(dst, fmt.lsb, out=dst)
        else:
            raw = self._scratch(tag, dst.shape, np.int64)
            quantize_(dst, fmt, raw_out=raw)

    def run(self, ins: List[np.ndarray],
            out: Optional[np.ndarray]) -> np.ndarray:
        raise NotImplementedError


class _KernelStep(_Step):
    """Unlowered kernel: the naive ``forward`` (always heap-allocated)."""

    heap_output = True

    def __init__(self, kernel: HLSKernel):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.kernel = kernel

    def run(self, ins, out):
        return self.kernel.forward(ins)


class _InputStep(_Step):
    """Entry quantization onto the input-stream grid, into the arena."""

    def __init__(self, kernel: InputKernel):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.fmt = kernel.config.result

    def run(self, ins, out):
        (x,) = ins
        out = self._out(x.shape[0], out)
        np.copyto(out, x)
        raw = self._scratch("raw", out.shape, np.int64)
        quantize_(out, self.fmt, raw_out=raw)
        return out


class _LUTStep(_Step):
    """Element-wise activation as an O(1) integer-indexed gather."""

    def __init__(self, kernel: HLSKernel, in_fmt: FixedPointFormat,
                 table: np.ndarray):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.table = table
        self.raw_min = in_fmt.raw_min
        self.inv_lsb = 1.0 / in_fmt.lsb

    def absorb_cast(self, cast: tuple) -> bool:
        """Requantize the table itself: the consumer's operand cast then
        costs nothing at run time (exact by construction — the cast is
        applied to every value the gather can ever emit)."""
        self.table = quantize(self.table, cast[0])
        return True

    def run(self, ins, out):
        (x,) = ins
        # x sits exactly on the producer grid, so x/lsb is an exact
        # integer-valued float and the truncating cast recovers the raw
        # word losslessly.  Raw words of a <=16-bit format always fit
        # int32; the narrower index halves the gather's memory traffic.
        tmp = self._scratch("tmp", x.shape)
        idx = self._scratch("idx", x.shape, np.int32)
        np.multiply(x, self.inv_lsb, out=tmp)
        np.copyto(idx, tmp, casting="unsafe")
        idx -= self.raw_min
        if out is None:
            return self.table[idx]
        np.take(self.table, idx, out=out)
        return out


class _SoftmaxStep(_Step):
    """Softmax with the exp-binning composed into one raw-indexed table.

    ``z = x − max(x)`` is an exact difference of grid values, so its raw
    word indexes a table holding ``exp_table[bin(z)]`` for every
    representable ``z ≤ 0``; the normalising division and the result cast
    run the identical float ops the naive kernel performs.
    """

    def __init__(self, kernel: SoftmaxKernel, in_fmt: FixedPointFormat):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.kernel = kernel
        self.inv_lsb = 1.0 / in_fmt.lsb
        self.zmin = in_fmt.raw_min - in_fmt.raw_max
        zraw = np.arange(self.zmin, 1, dtype=np.int64)
        z = zraw.astype(np.float64) * in_fmt.lsb
        # Replicate the naive binning expression op for op.
        scale = kernel.table_size / (2 * kernel.table_range)
        z += kernel.table_range
        z *= scale
        np.floor(z, out=z)
        idx = z.astype(np.int64)
        np.clip(idx, 0, kernel.table_size - 1, out=idx)
        self.table = np.ascontiguousarray(kernel.exp_table[idx])

    def run(self, ins, out):
        (x,) = ins
        out = self._out(x.shape[0], out)
        z = self._scratch("z", x.shape)
        idx = self._scratch("idx", x.shape, np.int64)
        np.subtract(x, np.max(x, axis=-1, keepdims=True), out=z)
        np.multiply(z, self.inv_lsb, out=z)
        np.copyto(idx, z, casting="unsafe")
        idx -= self.zmin
        np.take(self.table, idx, out=out)
        out /= out.sum(axis=-1, keepdims=True)
        raw = self._scratch("raw", out.shape, np.int64)
        quantize_(out, self.kernel.config.result, raw_out=raw)
        return out


class _MACStep(_Step):
    """Fused matmul/im2col + bias + requantize (+ activation gather).

    ``mode='raw'``: the accumulator cast was proven elidable, so the GEMM
    contracts weights pre-scaled by ``1/lsb(result)`` (an exact power-of-2
    scaling) and one rounding pass yields the raw result words directly;
    a fused activation table gathers from those words, otherwise a single
    multiply by ``lsb`` emits the value-domain stream.

    ``mode='naive'``: the classic accum-cast → result-cast pipeline (with
    persistent int64 scratch), still benefiting from the formulation
    choice and the arena.
    """

    def __init__(self, *, name: str, inputs: Sequence[str],
                 out_shape: Tuple[int, ...], mac_shape: Tuple[int, ...],
                 weight: np.ndarray, bias: Optional[np.ndarray],
                 accum: FixedPointFormat, result: FixedPointFormat,
                 mode: str, conv: Optional[dict] = None,
                 act_table: Optional[np.ndarray] = None):
        super().__init__(name, inputs, out_shape)
        self.mac_shape = tuple(mac_shape)  # per-frame shape of the MAC output
        self.mode = mode
        self.result = result
        self.accum = accum
        self.conv = conv  # {'k', 'pad_left', 'in_len', 'in_ch', 'same',
        #                   'formulation'}
        self.act_table = act_table

        if mode == "raw":
            scale = 1.0 / result.lsb  # exact power of two
            self.round_op = ("rint" if result.rounding is Rounding.RND_CONV
                             else "floor")
            offset = 0.5 if result.rounding is Rounding.RND else 0.0
            # For floor-rounded fused gathers the table-index origin
            # (−raw_min, an exact integer) folds straight into the bias
            # add: floor(x − lo) == floor(x) − lo.  rint's half-to-even
            # ties are not shift-invariant, so RND_CONV keeps the
            # separate subtraction.
            self.idx_folded = (act_table is not None
                              and self.round_op == "floor")
            if self.idx_folded:
                offset -= result.raw_min
            self.w_eff = np.ascontiguousarray(weight * scale)
            if bias is not None:
                self.badd = np.ascontiguousarray(bias * scale + offset)
            else:
                self.badd = offset if offset else None
        else:
            self.w_eff = np.ascontiguousarray(weight)
            self.badd = None if bias is None else np.ascontiguousarray(bias)
            self.round_op = None
            self.idx_folded = False
        self.w2_eff = (self.w_eff.reshape(-1, self.w_eff.shape[-1])
                       if self.w_eff.ndim == 3 else self.w_eff)
        if conv is not None:
            k = conv["k"]
            taps = self.w_eff.reshape(k, -1, self.w_eff.shape[-1])
            self.w_taps = np.ascontiguousarray(taps)
            self.w_flat = np.ascontiguousarray(
                np.concatenate([taps[j] for j in range(k)], axis=1))
        #: overflow op on the raw words (None when the bound proves the
        #: words in range)
        self.overflow: Optional[Overflow] = None
        #: index/raw scratch dtype — _build_mac_step narrows it to int32
        #: when the accumulator bound provably fits
        self.idx_dtype = np.int64
        #: set by _build_mac_step when the truncating int cast provably
        #: equals the floor (non-negative folded index, or a saturating
        #: clamp that absorbs the off-by-one on negative non-integers)
        self.trunc_ok = False

    def absorb_cast(self, cast: tuple) -> bool:
        """Fold a consumer's operand cast into the fused activation
        table (exact: the cast is applied to every value the gather can
        emit).  Refused without a table — the raw emit path would need a
        second rounding pass."""
        if self.act_table is None:
            return False
        self.act_table = quantize(self.act_table, cast[0])
        return True

    def _padded(self, x: np.ndarray) -> np.ndarray:
        """Persistent zero-edged padding buffer ('same') or a contiguous
        view/copy of the input ('valid')."""
        n = x.shape[0]
        k = self.conv["k"]
        left = self.conv["pad_left"]
        in_len, in_ch = self.conv["in_len"], self.conv["in_ch"]
        if not self.conv["same"]:
            if x.flags.c_contiguous:
                return x
            xp = self._scratch("pad", x.shape)
            np.copyto(xp, x)
            return xp
        shape = (n, in_len + k - 1, in_ch)
        fresh = ("pad", shape, np.dtype(np.float64).char) not in self._scr
        xp = self._scratch("pad", shape)
        if fresh:
            xp[:] = 0.0  # the edges stay zero forever after
        xp[:, left:left + in_len, :] = x
        return xp

    # -- GEMM ----------------------------------------------------------
    def _accumulate(self, x: np.ndarray, acc: np.ndarray) -> None:
        n = x.shape[0]
        if self.conv is None:
            if x.ndim > 2 and x.flags.c_contiguous:
                np.matmul(x.reshape(-1, x.shape[-1]), self.w2_eff,
                          out=acc.reshape(-1, acc.shape[-1]))
            else:
                np.matmul(x, self.w2_eff, out=acc)
            return
        k = self.conv["k"]
        in_ch = self.conv["in_ch"]
        t = self.mac_shape[0]
        f = self.mac_shape[-1]
        xp = self._padded(x)
        pad_len = xp.shape[1]
        form = self.conv["formulation"]
        if form == "tapflat":
            y = self._scratch("taps", (n * pad_len, k * f))
            np.matmul(xp.reshape(n * pad_len, in_ch), self.w_flat, out=y)
            yv = y.reshape(n, pad_len, k, f)
            np.copyto(acc, yv[:, 0:t, 0])
            for j in range(1, k):
                acc += yv[:, j:j + t, j]
        elif form == "tap3d":
            tap = self._scratch("tap", (n, t, f))
            np.matmul(xp[:, 0:t], self.w_taps[0], out=acc)
            for j in range(1, k):
                np.matmul(xp[:, j:j + t], self.w_taps[j], out=tap)
                acc += tap
        else:  # im2col
            from numpy.lib.stride_tricks import sliding_window_view
            windows = sliding_window_view(xp, k, axis=1)
            col = windows.transpose(0, 1, 3, 2).reshape(n, t, -1)
            np.matmul(col, self.w2_eff, out=acc)

    def tune(self) -> None:
        """Time each conv formulation on a synthetic batch and keep the
        fastest.  Safe because the formulations are bit-identical (exact
        sums are associative) — only wall time differs, and the best
        choice varies with layer shape and BLAS behaviour in ways no
        static heuristic captures.
        """
        if self.conv is None:
            return
        n = _TUNE_BATCH
        x = np.full((n, self.conv["in_len"], self.conv["in_ch"]), 0.5)
        acc = np.empty((n,) + self.mac_shape)
        best = None
        best_dt = None
        for form in ("im2col", "tapflat", "tap3d"):
            self.conv["formulation"] = form
            self._accumulate(x, acc)  # warm-up (and scratch allocation)
            t0 = time.perf_counter()
            for _ in range(_TUNE_REPS):
                self._accumulate(x, acc)
            dt = time.perf_counter() - t0
            if best_dt is None or dt < best_dt:
                best, best_dt = form, dt
        self.conv["formulation"] = best
        self._scr.clear()  # drop the tuning-batch-sized scratch buffers

    # -- full pipeline -------------------------------------------------
    def run(self, ins, out):
        (x,) = ins
        n = x.shape[0]
        fused = self.act_table is not None
        if fused:
            acc = self._scratch("acc", (n,) + self.mac_shape)
        elif out is None:
            # no arena slot: the output escapes to consumers, so it must
            # be a fresh array (a persistent scratch would be clobbered
            # by the next call).
            acc = np.empty((n,) + self.mac_shape)
        else:
            acc = out
        self._accumulate(x, acc)
        if self.badd is not None:
            acc += self.badd

        if self.mode == "naive":
            raw = self._scratch("raw", acc.shape, np.int64)
            quantize_(acc, self.accum, raw_out=raw)
            quantize_(acc, self.result, raw_out=raw)
            return acc

        # raw emit: acc already holds value/lsb; one rounding pass.
        fmt = self.result
        if self.round_op == "rint":
            np.rint(acc, out=acc)
        elif not (fused and self.trunc_ok):
            np.floor(acc, out=acc)
        # else: proven at build time that the truncating int cast below
        # gives the same index the floor would.
        if fused:
            # acc already holds the gather index when the origin shift
            # was folded into the bias add; otherwise shift here.
            ri = self._scratch("ri", acc.shape, self.idx_dtype)
            np.copyto(ri, acc, casting="unsafe")
            if not self.idx_folded:
                ri -= fmt.raw_min
            if self.overflow is Overflow.WRAP:
                # Power-of-2 span: the AND on the origin-shifted word is
                # the wrap *and* the index clamp in one pass.
                ri &= (1 << fmt.width) - 1
            elif self.overflow is not None:
                np.clip(ri, 0, fmt.raw_max - fmt.raw_min, out=ri)
            if out is None:
                return self.act_table[ri]
            np.take(self.act_table, ri, out=out)
            return out
        if self.overflow is None:
            np.multiply(acc, fmt.lsb, out=acc)
            return acc
        ri = self._scratch("ri", acc.shape, np.int64)
        np.copyto(ri, acc, casting="unsafe")
        self._apply_overflow(ri, fmt)
        np.multiply(ri, fmt.lsb, out=acc)
        return acc

    def _apply_overflow(self, ri: np.ndarray, fmt: FixedPointFormat) -> None:
        if self.overflow is Overflow.WRAP:
            # Power-of-2 span: two's-complement AND == the mod, including
            # for negatives.
            ri -= fmt.raw_min
            ri &= (1 << fmt.width) - 1
            ri += fmt.raw_min
        else:
            np.clip(ri, fmt.raw_min, fmt.raw_max, out=ri)


class _ConcatStep(_Step):
    """Concat with per-operand casts: only operands whose grid differs
    from the result grid pay the quantization pass (quantization is
    element-wise, so casting slice-by-slice is bit-identical to casting
    the naive concatenation)."""

    def __init__(self, kernel: ConcatKernel,
                 in_fmts: List[FixedPointFormat]):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        fmt = kernel.config.result
        self.parts = []
        for (a, b), in_fmt in zip(kernel.channel_slices(), in_fmts):
            if not kernel.requantize:
                cast = None
            elif in_fmt == fmt and fmt.width <= _EXACT_GRID_WIDTH:
                cast = None  # idempotent — same proof as the planner
            else:
                cast = (fmt, _overflow_free(in_fmt, fmt))
            self.parts.append((a, b, cast))

    def run(self, ins, out):
        out = self._out(ins[0].shape[0], out)
        for x, (a, b, cast) in zip(ins, self.parts):
            dst = out[..., a:b]
            np.copyto(dst, x)
            if cast is not None:
                self._cast(dst, cast[0], cast[1], tag=f"raw{a}")
        return out


class _CastOutMixin:
    """Steps that write a fresh output stream and can take over a
    sole consumer's operand cast (running it on their own contiguous
    output instead of the consumer's strided slice).  Bit-identical:
    quantization is element-wise, so casting before or after the copy
    into the concat slice is the same map."""

    def absorb_cast(self, cast: tuple) -> bool:
        if self.cast is not None:
            return False  # composing two casts is not a single cast
        self.cast = cast
        return True


class _MaxPoolStep(_CastOutMixin, _Step):
    def __init__(self, kernel: MaxPoolKernel, in_fmt: FixedPointFormat):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.pool = kernel.pool_size
        fmt = kernel.config.result
        self.cast = ((fmt, _overflow_free(in_fmt, fmt))
                     if kernel.requantize else None)

    def run(self, ins, out):
        (x,) = ins
        n = x.shape[0]
        out = self._out(n, out)
        t, c = self.out_shape
        v = x[:, : t * self.pool, :].reshape(n, t, self.pool, c)
        np.max(v, axis=2, out=out)
        if self.cast is not None:
            self._cast(out, self.cast[0], self.cast[1])
        return out


class _UpSampleStep(_CastOutMixin, _Step):
    def __init__(self, kernel: UpSampleKernel, in_fmt: FixedPointFormat):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.size = kernel.size
        fmt = kernel.config.result
        self.cast = ((fmt, _overflow_free(in_fmt, fmt))
                     if kernel.requantize else None)

    def run(self, ins, out):
        (x,) = ins
        n = x.shape[0]
        out = self._out(n, out)
        t, c = x.shape[1], x.shape[2]
        out.reshape(n, t, self.size, c)[:] = x[:, :, np.newaxis, :]
        if self.cast is not None:
            self._cast(out, self.cast[0], self.cast[1])
        return out


class _AliasStep(_Step):
    """Cast-free flatten/reshape/linear: the output *is* the input,
    reshaped — zero copies, the arena slot is shared."""

    aliases_input = True

    def __init__(self, kernel: HLSKernel):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)

    def run(self, ins, out):
        (x,) = ins
        return x.reshape((x.shape[0],) + self.out_shape)


class _CopyCastStep(_Step):
    """Flatten/reshape/linear whose result grid differs: copy + cast."""

    def __init__(self, kernel: HLSKernel, in_fmt: FixedPointFormat):
        super().__init__(kernel.name, kernel.input_names, kernel.output_shape)
        self.fmt = kernel.config.result
        self.fast = _overflow_free(in_fmt, self.fmt)

    def run(self, ins, out):
        (x,) = ins
        n = x.shape[0]
        out = self._out(n, out)
        np.copyto(out, x.reshape((n,) + self.out_shape))
        self._cast(out, self.fmt, self.fast)
        return out


# ----------------------------------------------------------------------
# The compiled plan
# ----------------------------------------------------------------------
class CompiledPlan:
    """Executable rewrite of one model: steps + static arena layout."""

    def __init__(self, steps: List[_Step], report: CompileReport,
                 use_arena: bool):
        self.steps = steps
        self.report = report
        self._dies_after = self._plan_liveness()
        self._slots: Dict[str, Tuple[int, int, Tuple[int, ...]]] = {}
        if use_arena:
            self.report.arena_words = self._plan_arena()
        self._arena: Optional[np.ndarray] = None
        self._capacity = 0
        self._views: Dict[int, Dict[str, np.ndarray]] = {}

    # -- planning ------------------------------------------------------
    def _plan_liveness(self) -> List[List[str]]:
        last: Dict[str, int] = {}
        for idx, step in enumerate(self.steps):
            for dep in step.inputs:
                last[dep] = idx
        dies: List[List[str]] = [[] for _ in self.steps]
        for dep, idx in last.items():
            if dep != "__input__":
                dies[idx].append(dep)
        return dies

    def _plan_arena(self) -> int:
        """First-fit static offset assignment over the liveness plan.

        Offsets are in per-frame float64 words; at run time slot ``s``
        occupies ``arena[off·cap : off·cap + n·size]`` (stream-major, so
        every view is contiguous).  Alias steps share their producer's
        slot via refcounting.
        """
        holes: List[List[int]] = [[0, 1 << 60]]
        high_water = 0
        region_of: Dict[str, Tuple[int, int]] = {}
        refs: Dict[Tuple[int, int], int] = {}
        out_name = self.steps[-1].name

        def alloc(size: int) -> int:
            for hole in holes:
                if hole[1] >= size:
                    off = hole[0]
                    hole[0] += size
                    hole[1] -= size
                    return off
            raise AssertionError("unbounded hole list exhausted")

        def release(off: int, size: int) -> None:
            holes.append([off, size])
            holes.sort()
            merged = [holes[0]]
            for h in holes[1:]:
                if merged[-1][0] + merged[-1][1] == h[0]:
                    merged[-1][1] += h[1]
                else:
                    merged.append(h)
            holes[:] = merged

        for idx, step in enumerate(self.steps):
            if step.aliases_input:
                src = step.inputs[0]
                if src in region_of:
                    region = region_of[src]
                    region_of[step.name] = region
                    refs[region] += 1
            elif not step.heap_output:
                size = step.out_words
                off = alloc(size)
                high_water = max(high_water, off + size)
                region = (off, size)
                region_of[step.name] = region
                refs[region] = 1
                self._slots[step.name] = (off, size, step.out_shape)
            for dep in self._dies_after[idx]:
                if dep == out_name or dep not in region_of:
                    continue
                region = region_of[dep]
                refs[region] -= 1
                if refs[region] == 0:
                    release(*region)
        return high_water

    # -- execution -----------------------------------------------------
    def _ensure_views(self, n: int) -> Dict[str, np.ndarray]:
        views = self._views.get(n)
        if views is not None:
            return views
        if not self._slots:
            views = {}
        else:
            total = self.report.arena_words
            if self._arena is None or n > self._capacity:
                self._capacity = max(n, self._capacity)
                self._arena = np.empty(total * self._capacity)
                self._views.clear()
            cap = self._capacity
            views = {}
            for name, (off, size, shape) in self._slots.items():
                region = self._arena[off * cap: off * cap + n * size]
                views[name] = region.reshape((n,) + shape)
        self._views[n] = views
        return views

    def run(self, x: np.ndarray, profile: bool = False, tracer=None):
        """Execute the plan; returns ``(output, peak_live, freed, times)``.

        ``tracer`` is the observability hook (see
        :mod:`repro.obs.spans`): when given, every step records one
        wall-clock span named ``step.<name>`` carrying the naive kernels
        it covers — a pure observer, so outputs stay bit-identical.
        """
        n = x.shape[0]
        views = self._ensure_views(n)
        values: Dict[str, np.ndarray] = {}
        peak = 0
        freed = 0
        timed = profile or tracer is not None
        times: Optional[Dict[str, float]] = {} if profile else None
        for idx, step in enumerate(self.steps):
            ins = [x if dep == "__input__" else values[dep]
                   for dep in step.inputs]
            out = views.get(step.name)
            if timed:
                t0 = time.perf_counter()
            values[step.name] = step.run(ins, out)
            if timed:
                t1 = time.perf_counter()
                if profile:
                    times[step.name] = t1 - t0
                if tracer is not None:
                    tracer.record(f"step.{step.name}", wall_t0=t0,
                                  wall_t1=t1, covers=len(step.covers))
            if len(values) > peak:
                peak = len(values)
            for dep in self._dies_after[idx]:
                del values[dep]
                freed += 1
        out_name = self.steps[-1].name
        y = values[out_name]
        if out_name in self._slots or self.steps[-1].aliases_input:
            # arena-backed (or a view of an arena slot): hand the caller
            # an owned copy so the next run cannot mutate it.
            y = y.copy()
        return y, peak, freed, times


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _producer_fmt(model, name: str) -> FixedPointFormat:
    return model.get_kernel(name).config.result


def _push_cast_up(model, built: Dict[str, _Step],
                  consumers: Dict[str, List[HLSKernel]],
                  dep: str, cast: tuple, expect: HLSKernel) -> bool:
    """Try to absorb a concat operand *cast* into the producer chain of
    *dep* (whose sole consumer must be *expect*).

    Preference order: straight into a LUT / fused-MAC gather table
    (free), through a cast-free up-sample into *its* producer (repeats
    of cast values are the cast of the repeats), else locally into an
    up-sample/max-pool step's contiguous output.
    """
    prod = built.get(dep)
    if prod is None:
        return False
    cons = consumers.get(dep, [])
    if len(cons) != 1 or cons[0] is not expect:
        return False
    if isinstance(prod, (_LUTStep, _MACStep)):
        return prod.absorb_cast(cast)
    if isinstance(prod, _UpSampleStep) and prod.cast is None:
        up_kernel = model.get_kernel(prod.name)
        if _push_cast_up(model, built, consumers, prod.inputs[0], cast,
                         up_kernel):
            return True
        return prod.absorb_cast(cast)
    if isinstance(prod, _CastOutMixin):
        return prod.absorb_cast(cast)
    return False


def _try_fold_bn(model, mac, bn, report: CompileReport):
    """Fold ``bn`` into ``mac`` when provably exact; returns the folded
    ``(weight, bias)`` or ``None`` (reason recorded)."""
    in_fmt = _producer_fmt(model, mac.input_names[0])
    w_fmt = mac.config.weight
    s_fmt = bn.config.weight
    for fmt in (in_fmt, w_fmt, s_fmt):
        if fmt.fractional < 0:
            report.fallbacks[bn.name] = "coarse (negative-fraction) grid"
            return None
    w2 = mac.weight_matrix
    bias = mac.weights.get("bias")
    in_max = _max_abs(in_fmt)
    bound = _mac_bound(w2, bias, in_max)
    prod_frac = in_fmt.fractional + w_fmt.fractional
    if bound / 2.0 ** (-prod_frac) > _EXACT_SUM_LIMIT:
        report.fallbacks[bn.name] = "accumulator exceeds exact-sum window"
        return None
    # The producer's casts must be identity on every achievable
    # accumulator, otherwise the quantization between MAC and BN is
    # observable and folding would change bits.
    if not _cast_identity(mac.config.accum, prod_frac, bound):
        report.fallbacks[bn.name] = "producer accum cast is not identity"
        return None
    if not _cast_identity(mac.config.result, prod_frac, bound):
        report.fallbacks[bn.name] = "producer result cast is not identity"
        return None
    scale = bn.weights["scale"]
    shift = bn.weights["shift"]
    s_max = float(np.abs(scale).max()) if scale.size else 0.0
    # Element products W·s and the BN's own acc·s must be exact floats.
    if (_max_abs(w_fmt) * s_max / (w_fmt.lsb * s_fmt.lsb) > _EXACT_SUM_LIMIT
            or bound * s_max / (2.0 ** (-prod_frac) * s_fmt.lsb)
            > _EXACT_SUM_LIMIT):
        report.fallbacks[bn.name] = "folded product leaves exact window"
        return None
    weight = mac.weights["kernel"] * scale  # broadcasts over the out axis
    bias_f = shift if bias is None else bias * scale + shift
    w2f = weight.reshape(-1, weight.shape[-1]) if weight.ndim == 3 else weight
    bound_f = _mac_bound(w2f, bias_f, in_max)
    prod_frac_f = prod_frac + s_fmt.fractional
    if bound_f / 2.0 ** (-prod_frac_f) > _EXACT_SUM_LIMIT:
        report.fallbacks[bn.name] = "folded sum leaves exact window"
        return None
    return weight, np.asarray(bias_f, dtype=np.float64), bound_f, prod_frac_f


def _build_mac_step(model, mac, *, out_name: str, weight, bias,
                    accum: FixedPointFormat, result: FixedPointFormat,
                    bound: float, prod_frac: int,
                    consumers: Dict[str, List[HLSKernel]],
                    report: CompileReport, absorbed: set) -> Optional[_Step]:
    """Lower one Dense/Conv (possibly BN-folded) to a :class:`_MACStep`,
    fusing a following activation LUT when provable.  Returns ``None``
    when the exact-sum precondition fails (caller falls back)."""
    if bound / 2.0 ** (-prod_frac) > _EXACT_SUM_LIMIT:
        report.fallbacks[out_name] = "accumulator exceeds exact-sum window"
        return None

    conv = None
    if isinstance(mac, Conv1DKernel):
        in_len, in_ch = mac.input_shapes[0]
        k = mac.kernel_size
        conv = {"k": k, "pad_left": (k - 1) // 2, "in_len": int(in_len),
                "in_ch": int(in_ch), "same": mac.padding == "same",
                "formulation": ("tapflat"
                                if int(in_ch) >= _TAPFLAT_MIN_CHANNELS
                                else "im2col")}

    raw_ok = (
        _accum_cast_skippable(accum, result, prod_frac, bound)
        and result.rounding in (Rounding.RND, Rounding.TRN, Rounding.RND_CONV)
        and bound / result.lsb + 1.0 < _RAW_GUARD
    )
    mode = "raw" if raw_ok else "naive"

    act = None
    if mode == "raw":
        outs = consumers.get(out_name, [])
        if (len(outs) == 1 and outs[0].supports_lut
                and _lut_span_ok(result)
                and result.width <= MAX_LUT_BITS):
            act = outs[0]

    act_table = _build_lut(act, result) if act is not None else None
    step = _MACStep(
        name=act.name if act is not None else out_name,
        inputs=mac.input_names,
        out_shape=(act.output_shape if act is not None
                   else (model.get_kernel(out_name).output_shape
                         if out_name != mac.name else mac.output_shape)),
        mac_shape=mac.output_shape,
        weight=weight, bias=bias, accum=accum, result=result,
        mode=mode, conv=conv, act_table=act_table,
    )
    if mode == "raw":
        raw_bound = bound / result.lsb + 1.0
        in_range = (raw_bound <= result.raw_max
                    and -raw_bound >= result.raw_min)
        step.overflow = None if in_range else result.overflow
        span = float(1 << result.width)
        idx_max = raw_bound + span  # |folded index| before any shift
        if step.idx_folded:
            if step.overflow is None:
                # In-range raw word, origin already shifted: index >= 0,
                # truncation == floor.
                step.trunc_ok = True
            elif step.overflow is Overflow.WRAP:
                # Shift the folded index by a span multiple so it is
                # provably non-negative: floor commutes with the integer
                # shift and the wrap AND ignores it, so only the exact-
                # float gate on the larger magnitudes must still hold.
                shift = (float(raw_bound // span) + 2.0) * span
                fine = 2.0 ** (prod_frac - result.fractional)
                if (idx_max + shift) * fine <= _EXACT_SUM_LIMIT:
                    step.badd = (shift if step.badd is None
                                 else step.badd + shift)
                    step.trunc_ok = True
                    idx_max += shift
            else:
                # Saturating clamp to [0, span): on negative non-integers
                # truncation and floor differ by one but both land <= 0
                # and clip to the same bound.
                step.trunc_ok = True
        if idx_max + 1.0 < float(2**31):
            step.idx_dtype = np.int32
        report.fused.append(out_name)
    covers = [mac.name]
    if out_name != mac.name:
        covers.append(out_name)
    if act is not None:
        covers.append(act.name)
        absorbed.add(act.name)
        report.luts.append(act.name)
    step.covers = covers
    return step


#: Conv formulations a caller may force (``None``/"auto" = wall-clock
#: auto-tune; any forced choice is bit-identical, only speed differs).
CONV_FORMULATIONS = ("im2col", "tapflat", "tap3d")


def compile_model(model, level: int,
                  conv_formulation: Optional[str] = None) -> CompiledPlan:
    """Build the compiled plan for *model* at the given level.

    * level 1 — local rewrites: activation LUTs, fused MAC+requantize,
      per-operand concat casts, lowered routing steps.
    * level 2 — additionally batch-norm folding and the static arena.

    ``conv_formulation`` forces every conv MAC step onto one formulation
    (``"im2col"``/``"tapflat"``/``"tap3d"``) and skips the wall-clock
    auto-tuner — the deterministic choice DSE sweeps need.  ``None`` or
    ``"auto"`` keeps the auto-tuned default.
    """
    if conv_formulation in ("auto",):
        conv_formulation = None
    if conv_formulation is not None and conv_formulation not in CONV_FORMULATIONS:
        raise ValueError(
            f"conv_formulation must be one of {CONV_FORMULATIONS} or 'auto', "
            f"got {conv_formulation!r}"
        )
    report = CompileReport(level=level)
    consumers: Dict[str, List[HLSKernel]] = {}
    for kernel in model.kernels:
        for dep in kernel.input_names:
            consumers.setdefault(dep, []).append(kernel)

    # Pre-pass: provable batch-norm folds (level 2).
    fold: Dict[str, tuple] = {}
    if level >= 2:
        for kernel in model.kernels:
            if not isinstance(kernel, BatchNormKernel):
                continue
            prod = model.get_kernel(kernel.input_names[0]) \
                if kernel.input_names[0] != "__input__" else None
            if not isinstance(prod, (DenseKernel, Conv1DKernel)):
                report.fallbacks[kernel.name] = "producer is not dense/conv"
                continue
            if consumers.get(prod.name, []) != [kernel]:
                report.fallbacks[kernel.name] = "producer has other consumers"
                continue
            folded = _try_fold_bn(model, prod, kernel, report)
            if folded is not None:
                fold[prod.name] = (kernel,) + folded
                report.folded.append(kernel.name)

    steps: List[_Step] = []
    built: Dict[str, _Step] = {}
    absorbed: set = {f[0].name for f in fold.values()}

    for kernel in model.kernels:
        if kernel.name in absorbed:
            continue
        step: Optional[_Step] = None

        if isinstance(kernel, InputKernel):
            step = _InputStep(kernel)

        elif isinstance(kernel, (DenseKernel, Conv1DKernel)):
            if kernel.name in fold:
                bn, weight, bias, bound, prod_frac = fold[kernel.name]
                step = _build_mac_step(
                    model, kernel, out_name=bn.name, weight=weight,
                    bias=bias, accum=bn.config.accum,
                    result=bn.config.result, bound=bound,
                    prod_frac=prod_frac, consumers=consumers,
                    report=report, absorbed=absorbed)
                if step is None:  # un-fold: run both kernels naively
                    report.folded.remove(bn.name)
                    del fold[kernel.name]
                    absorbed.discard(bn.name)
                    step = _KernelStep(kernel)
            else:
                in_fmt = _producer_fmt(model, kernel.input_names[0])
                w_fmt = kernel.config.weight
                bound = _mac_bound(kernel.weight_matrix,
                                   kernel.weights.get("bias"),
                                   _max_abs(in_fmt))
                prod_frac = in_fmt.fractional + w_fmt.fractional
                step = _build_mac_step(
                    model, kernel, out_name=kernel.name,
                    weight=kernel.weights["kernel"],
                    bias=kernel.weights.get("bias"),
                    accum=kernel.config.accum, result=kernel.config.result,
                    bound=bound, prod_frac=prod_frac, consumers=consumers,
                    report=report, absorbed=absorbed)
                if step is None:
                    step = _KernelStep(kernel)

        elif kernel.supports_lut:
            in_fmt = _producer_fmt(model, kernel.input_names[0])
            if _lut_span_ok(in_fmt):
                step = _LUTStep(kernel, in_fmt, _build_lut(kernel, in_fmt))
                report.luts.append(kernel.name)
            else:
                report.fallbacks[kernel.name] = "input format too wide for LUT"
                step = _KernelStep(kernel)

        elif isinstance(kernel, SoftmaxKernel):
            in_fmt = _producer_fmt(model, kernel.input_names[0])
            if _lut_span_ok(in_fmt):
                step = _SoftmaxStep(kernel, in_fmt)
                report.luts.append(kernel.name)
            else:
                report.fallbacks[kernel.name] = "input format too wide for LUT"
                step = _KernelStep(kernel)

        elif isinstance(kernel, ConcatKernel):
            in_fmts = [_producer_fmt(model, d) for d in kernel.input_names]
            step = _ConcatStep(kernel, in_fmts)
            # Push operand casts down into sole-consumer producers —
            # into a gather table when possible (free), else onto a
            # contiguous producer output instead of this step's strided
            # channel slice.
            for i, dep in enumerate(kernel.input_names):
                a, b, cast = step.parts[i]
                if cast is not None and _push_cast_up(
                        model, built, consumers, dep, cast, kernel):
                    step.parts[i] = (a, b, None)

        elif isinstance(kernel, MaxPoolKernel):
            step = _MaxPoolStep(
                kernel, _producer_fmt(model, kernel.input_names[0]))

        elif isinstance(kernel, UpSampleKernel):
            step = _UpSampleStep(
                kernel, _producer_fmt(model, kernel.input_names[0]))

        elif isinstance(kernel, (FlattenKernel, ReshapeKernel, LinearKernel)):
            step = (_AliasStep(kernel) if not kernel.requantize
                    else _CopyCastStep(
                        kernel, _producer_fmt(model, kernel.input_names[0])))

        else:
            report.fallbacks.setdefault(kernel.name,
                                        f"no lowering for kind {kernel.kind!r}")
            step = _KernelStep(kernel)

        steps.append(step)
        built[step.name] = step

    # Fused steps absorbed downstream kernels that already had an entry
    # scheduled?  No: absorption is decided before the absorbed kernel is
    # reached (topological order), so `steps` is consistent.
    for step in steps:
        if isinstance(step, _MACStep):
            if conv_formulation is not None:
                if step.conv is not None:
                    step.conv["formulation"] = conv_formulation
            else:
                step.tune()
    return CompiledPlan(steps, report, use_arena=level >= 2)
