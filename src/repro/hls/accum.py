"""Accumulator precision inference.

hls4ml sizes each MAC layer's accumulator so the worst-case sum of
products cannot overflow: with ``n`` terms of ``weight × data`` products,
the accumulator needs

``I_acc = I_w + I_d + ceil(log2(n))`` integer bits and
``F_acc = F_w + F_d`` fractional bits

(capped to the 62-bit simulation limit).  Using the inferred format
instead of the blanket wide default tightens the resource model (narrower
adder trees) without ever changing numerics — by construction the
inferred accumulator is exact for the layer it serves.
"""

from __future__ import annotations

import math

from repro.fixed import FixedPointFormat, Overflow, Rounding
from repro.hls.kernels.base import HLSKernel
from repro.hls.model import HLSModel

__all__ = ["infer_accum_format", "apply_accum_inference"]

#: int64 simulation limit for raw values (one guard bit kept).
MAX_SIM_WIDTH = 62


def infer_accum_format(kernel: HLSKernel) -> FixedPointFormat:
    """Exact accumulator format for one MAC kernel.

    Parameter-free kernels keep their configured accumulator (they do
    not accumulate).
    """
    n_terms = kernel.n_mult_per_position
    if n_terms == 0:
        return kernel.config.accum
    w = kernel.config.weight
    d_candidates = [
        kernel.config.result  # fallback when input format unknown
    ]
    # Use the widest producer format available through input shapes is
    # not tracked on kernels; the layer's own result format bounds the
    # stream datatype in this flow (all strategies set both together).
    d = d_candidates[0]
    integer = w.integer + d.integer + int(math.ceil(math.log2(n_terms + 1))) + 1
    frac = w.fractional + d.fractional
    width = integer + frac
    if width > MAX_SIM_WIDTH:
        # Trim fractional bits first (they only add sub-LSB precision).
        frac = max(0, MAX_SIM_WIDTH - integer)
        width = integer + frac
        if width > MAX_SIM_WIDTH:
            integer = MAX_SIM_WIDTH
            frac = 0
            width = MAX_SIM_WIDTH
    return FixedPointFormat(width, integer, rounding=Rounding.TRN,
                            overflow=Overflow.SAT)


def apply_accum_inference(model: HLSModel) -> HLSModel:
    """Replace every MAC kernel's accumulator with its inferred format.

    Mutates the kernels' configs in place (formats are immutable; the
    configs are swapped) and returns the same model for chaining.  The
    numerics are unchanged — the inferred accumulator is exact — but the
    resource estimator sees realistic adder-tree widths.
    """
    from dataclasses import replace

    for kernel in model.kernels:
        if kernel.n_mult_per_position:
            inferred = infer_accum_format(kernel)
            kernel.config = replace(kernel.config, accum=inferred)
    return model
