"""C++ project emission — the textual artefact of the hls4ml flow.

The paper's flow has hls4ml "convert the U-Net Keras model to a C++
project with HLS annotations", then hand-customizes the memory-mapped
host interface before the Intel HLS compiler synthesizes it.  This
package emits that project as text: parameter headers, quantized weight
tables, the component function with Avalon MM host annotations and a
reference testbench.  Nothing here is compiled (no Intel toolchain in
this environment); the artefact exists so that the generated-code layer
of the flow is inspectable and regression-testable.
"""

from repro.hls.codegen.cpp import emit_project, write_project

__all__ = ["emit_project", "write_project"]
