"""Precision strategies: uniform vs layer-based (paper Table II).

* :func:`uniform_config` — one ``ac_fixed<W, I>`` everywhere (the rows
  "Uniform Precision ac_fixed<18,10>" and "ac_fixed<16,7>").
* :func:`layer_based_config` — the paper's winning strategy: keep the
  total width at ``W`` (16) but derive each layer's integer bits from its
  profiled maximum absolute output, and each layer's weight integer bits
  from its weight maxima ("Layer-based Precision ac_fixed<16, x>").

Both apply the deployed design's reuse factors: default 32 with 260 on
Dense and Sigmoid layers (paper Table III).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fixed import FixedPointFormat, Overflow, Rounding
from repro.hls.config import HLSConfig, LayerConfig, WIDE_ACCUM
from repro.hls.profiling import LayerProfile, profile_model
from repro.nn.layers.activations import Sigmoid
from repro.nn.layers.dense import Dense
from repro.nn.model import Model

__all__ = ["uniform_config", "layer_based_config", "apply_reference_reuse"]

#: Table III: "Default Reuse Factor 32; Dense/Sigmoid Reuse Factor 260".
DEFAULT_REUSE = 32
DENSE_SIGMOID_REUSE = 260


def apply_reference_reuse(config: HLSConfig, model: Model,
                          default_reuse: int = DEFAULT_REUSE,
                          dense_sigmoid_reuse: int = DENSE_SIGMOID_REUSE) -> None:
    """Set the paper's reuse factors on *config* (in place)."""
    from dataclasses import replace

    config.default = replace(config.default, reuse_factor=default_reuse)
    for layer in model.layers:
        if isinstance(layer, (Dense, Sigmoid)):
            config.set_layer(layer.name, reuse_factor=dense_sigmoid_reuse)


def uniform_config(width: int = 16, integer: int = 7,
                   model: Optional[Model] = None,
                   rounding: Rounding = Rounding.RND,
                   overflow: Overflow = Overflow.WRAP,
                   clock_hz: float = 100e6) -> HLSConfig:
    """One format for every weight and every stream.

    ``overflow`` defaults to WRAP — the silicon default, and the reason
    the paper's uniform ``<16,7>`` row collapses to 16.7 % / 36.5 %
    accuracy when burst frames exceed the ±64 range.
    """
    fmt = FixedPointFormat(width, integer, rounding=rounding, overflow=overflow)
    config = HLSConfig(
        default=LayerConfig(weight=fmt, result=fmt, accum=WIDE_ACCUM,
                            reuse_factor=DEFAULT_REUSE),
        clock_hz=clock_hz,
        strategy=f"uniform<{width},{integer}>",
    )
    if model is not None:
        apply_reference_reuse(config, model)
    return config


def _integer_bits_for(max_abs: float, margin_bits: int = 0) -> int:
    """Integer bits (sign included) to hold values up to ``max_abs``."""
    fmt = FixedPointFormat.for_range(max_abs, width=16, signed=True,
                                     margin_bits=margin_bits)
    return fmt.integer


def layer_based_config(model: Model, x_profile: np.ndarray,
                       width: int = 16, margin_bits: int = 0,
                       profiles: Optional[Dict[str, LayerProfile]] = None,
                       rounding: Rounding = Rounding.RND,
                       overflow: Overflow = Overflow.WRAP,
                       clock_hz: float = 100e6) -> HLSConfig:
    """The paper's layer-based strategy, derived from profiling.

    Parameters
    ----------
    model:
        The trained float network.
    x_profile:
        Profiling dataset (the paper profiles on training data).
    width:
        Total bits per value — 16 in the deployed design.
    margin_bits:
        Extra integer headroom.  Fig 5(b)'s observation that "half of
        these outliers could be mitigated by adding one extra bit to the
        integer part" is reproduced by re-running with ``margin_bits=1``.
    profiles:
        Pre-computed profiles (skips the forward passes when provided).
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    if margin_bits < 0:
        raise ValueError(f"margin_bits must be >= 0, got {margin_bits}")
    if profiles is None:
        profiles = profile_model(model, x_profile)
    config = HLSConfig(
        default=LayerConfig(
            weight=FixedPointFormat(width, 7, rounding=rounding, overflow=overflow),
            result=FixedPointFormat(width, 7, rounding=rounding, overflow=overflow),
            accum=WIDE_ACCUM,
            reuse_factor=DEFAULT_REUSE,
        ),
        clock_hz=clock_hz,
        strategy=f"layer-based<{width},x>"
        + (f"+{margin_bits}" if margin_bits else ""),
    )
    for layer in model.layers:
        prof = profiles[layer.name]
        result_int = _integer_bits_for(prof.max_abs_output, margin_bits)
        result_fmt = FixedPointFormat(width, result_int,
                                      rounding=rounding, overflow=overflow)
        if layer.params:
            weight_int = _integer_bits_for(prof.max_abs_weight, margin_bits)
            weight_fmt = FixedPointFormat(width, weight_int,
                                          rounding=rounding, overflow=overflow)
        else:
            weight_fmt = result_fmt
        config.set_layer(layer.name, result=result_fmt, weight=weight_fmt)
    apply_reference_reuse(config, model)
    return config
