"""Kernel base class and shared cast helpers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fixed import quantize, quantize_
from repro.hls.config import LayerConfig

__all__ = ["HLSKernel"]

Shape = Tuple[int, ...]


class HLSKernel:
    """One layer of the generated firmware.

    Parameters
    ----------
    name:
        Layer name (matches the source :class:`repro.nn.Layer`).
    config:
        Fully-resolved :class:`LayerConfig` (no ``None`` fields).
    input_names:
        Names of producer kernels (``["__input__"]`` for the entry point).
    input_shapes / output_shape:
        Static shapes excluding batch.

    Subclass contract
    -----------------
    ``forward(inputs)`` consumes float arrays already on the producers'
    fixed-point grids and returns floats on this kernel's *result* grid.
    The cost-model hooks (:attr:`n_mult_per_position`,
    :attr:`sequence_positions`, :attr:`weight_words`, :attr:`table_bits`)
    describe the hardware the kernel would instantiate.
    """

    #: short type tag used in reports and codegen ("dense", "conv1d", ...)
    kind = "kernel"

    #: True when ``forward`` maps input-grid values to input-grid values
    #: (pure routing / exact comparators).  The model's planning pass uses
    #: it to drop the result cast when producer and result formats match.
    grid_preserving = False

    #: cleared by :meth:`HLSModel._plan_requantization` when the cast onto
    #: the result grid is provably a no-op for this kernel's wiring.
    requantize = True

    #: True for pure element-wise kernels whose forward depends only on
    #: the scalar input value — :mod:`repro.hls.compile` replaces them
    #: with an exhaustive raw-word lookup table when the producer format
    #: is narrow enough to enumerate (bit-exact by construction).
    supports_lut = False

    def __init__(self, name: str, config: LayerConfig,
                 input_names: Sequence[str],
                 input_shapes: Sequence[Shape], output_shape: Shape):
        for field_name in ("weight", "result", "accum", "reuse_factor"):
            if getattr(config, field_name) is None:
                raise ValueError(
                    f"kernel {name!r} needs a fully-resolved LayerConfig "
                    f"(missing {field_name})"
                )
        self.name = name
        self.config = config
        self.input_names = list(input_names)
        self.input_shapes = [tuple(s) for s in input_shapes]
        self.output_shape = tuple(output_shape)
        #: quantized parameter arrays (values on the weight-format grid)
        self.weights: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Fixed-point plumbing
    # ------------------------------------------------------------------
    def _to_accum(self, values: np.ndarray) -> np.ndarray:
        """Cast an exact arithmetic result into the accumulator format."""
        return quantize(values, self.config.accum)

    def _to_result(self, values: np.ndarray) -> np.ndarray:
        """Cast into the layer's result format (the stream datatype)."""
        return quantize(values, self.config.result)

    def _to_accum_(self, values: np.ndarray) -> np.ndarray:
        """In-place accumulator cast — only for arrays this kernel owns
        (freshly computed, never an input stream)."""
        return quantize_(values, self.config.accum)

    def _to_result_(self, values: np.ndarray) -> np.ndarray:
        """In-place result cast — only for arrays this kernel owns."""
        return quantize_(values, self.config.result)

    def _cast_result(self, values: np.ndarray) -> np.ndarray:
        """Result cast honouring the model's requantization plan.

        Routing kernels call this on (views of) their input streams: when
        the planner proved the values are already on this kernel's result
        grid the cast is skipped entirely, otherwise it quantizes into a
        fresh array.
        """
        if not self.requantize:
            return values
        return quantize(values, self.config.result)

    def _cast_result_(self, values: np.ndarray) -> np.ndarray:
        """Like :meth:`_cast_result`, for arrays the kernel owns: the
        cast (when still needed) runs in place instead of copying."""
        if not self.requantize:
            return values
        return quantize_(values, self.config.result)

    def quantize_weight(self, key: str, values: np.ndarray) -> np.ndarray:
        """Quantize and register a parameter array under *key*."""
        q = quantize(np.asarray(values, dtype=np.float64), self.config.weight)
        self.weights[key] = q
        return q

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cost-model hooks (defaults: free routing layer)
    # ------------------------------------------------------------------
    @property
    def sequence_positions(self) -> int:
        """Outer loop trip count (sequence length; 1 for flat layers)."""
        shape = self.output_shape
        return int(shape[0]) if len(shape) >= 2 else 1

    @property
    def n_mult_per_position(self) -> int:
        """Multiplications performed per outer-loop iteration."""
        return 0

    @property
    def n_mult_total(self) -> int:
        """Total multiplications per inference."""
        return self.n_mult_per_position * self.sequence_positions

    @property
    def weight_words(self) -> int:
        """Distinct weight words touched per inference (BRAM streaming)."""
        return int(sum(w.size for w in self.weights.values()))

    @property
    def streams_weights(self) -> bool:
        """True when weights are streamed from BRAM once per inference
        (flat dense layers), making the layer memory-bandwidth bound."""
        return False

    @property
    def table_bits(self) -> int:
        """Bits of lookup-table ROM the kernel instantiates."""
        return 0

    @property
    def output_elements(self) -> int:
        """Number of scalar outputs per inference."""
        return int(np.prod(self.output_shape))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.name} [{self.kind}] out={self.output_shape} "
            f"result={self.config.result.spec()} reuse={self.config.reuse_factor}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"
