"""Activation kernels.

ReLU is exact; the saturating activations follow hls4ml's lookup-table
implementation: a ``LUT_SIZE``-entry table spanning ``±LUT_RANGE`` of the
input axis, values pre-quantized into the layer's result format.  Inputs
outside the range clamp to the table ends — exactly the saturation the
real firmware exhibits.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hls.config import LayerConfig
from repro.hls.kernels.base import HLSKernel, Shape

__all__ = ["ReLUKernel", "SigmoidKernel", "TanhKernel", "SoftmaxKernel",
           "LUT_SIZE", "LUT_RANGE"]

#: hls4ml defaults: 1024-entry tables over [-8, 8).
LUT_SIZE = 1024
LUT_RANGE = 8.0


class ReLUKernel(HLSKernel):
    """``max(x, 0)`` then cast to the result format (exact comparator).

    Grid-preserving: zero is representable in every format and positive
    inputs pass through unchanged, so when the producer already emits
    this layer's result grid the planner drops the cast.
    """

    kind = "relu"
    grid_preserving = True
    supports_lut = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape]):
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes, tuple(in_shape))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._cast_result_(np.maximum(x, 0.0))


class _TableActivation(HLSKernel):
    """Shared LUT machinery for sigmoid/tanh."""

    supports_lut = True

    #: the float reference function; set by subclasses
    _func = staticmethod(lambda x: x)

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape],
                 table_size: int = LUT_SIZE, table_range: float = LUT_RANGE):
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes, tuple(in_shape))
        if table_size < 2:
            raise ValueError(f"table_size must be >= 2, got {table_size}")
        if table_range <= 0:
            raise ValueError(f"table_range must be positive, got {table_range}")
        self.table_size = int(table_size)
        self.table_range = float(table_range)
        # Table sampled at bin centres, pre-quantized to the result grid.
        centers = (np.arange(self.table_size) + 0.5) * (
            2 * self.table_range / self.table_size
        ) - self.table_range
        self.table = self._to_result(self._func(centers))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        scale = self.table_size / (2 * self.table_range)
        bins = x + self.table_range
        bins *= scale
        np.floor(bins, out=bins)
        idx = bins.astype(np.int64)
        np.clip(idx, 0, self.table_size - 1, out=idx)
        return self.table[idx]

    @property
    def table_bits(self) -> int:
        return self.table_size * self.config.result.width


class SigmoidKernel(_TableActivation):
    """LUT sigmoid — the IP's 520 output probabilities pass through this."""

    kind = "sigmoid"
    _func = staticmethod(lambda x: 1.0 / (1.0 + np.exp(-x)))


class TanhKernel(_TableActivation):
    """LUT tanh."""

    kind = "tanh"
    _func = staticmethod(np.tanh)


class SoftmaxKernel(HLSKernel):
    """LUT-exp softmax over the last axis (hls4ml's two-table scheme,
    simplified to one exp table plus an exact normalising division)."""

    kind = "softmax"

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape],
                 table_size: int = LUT_SIZE, table_range: float = LUT_RANGE):
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes, tuple(in_shape))
        self.table_size = int(table_size)
        self.table_range = float(table_range)
        centers = (np.arange(self.table_size) + 0.5) * (
            2 * self.table_range / self.table_size
        ) - self.table_range
        self.exp_table = np.exp(centers)

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        z = x - np.max(x, axis=-1, keepdims=True)
        scale = self.table_size / (2 * self.table_range)
        z += self.table_range
        z *= scale
        np.floor(z, out=z)
        idx = z.astype(np.int64)
        np.clip(idx, 0, self.table_size - 1, out=idx)
        e = self.exp_table[idx]
        e /= e.sum(axis=-1, keepdims=True)
        return self._to_result_(e)

    @property
    def table_bits(self) -> int:
        return self.table_size * self.config.result.width
