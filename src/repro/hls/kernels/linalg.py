"""Multiply-accumulate kernels: dense, conv1d, fused batch-norm.

Arithmetic discipline (matching the AC-types dataflow the Intel HLS
compiler simulates): inputs and weights sit exactly on their fixed-point
grids, so products and sums computed in float64 are *exact* (a 16×16-bit
product has 32 significant bits; accumulating ≲2¹⁴ of them stays well
inside float64's 53-bit mantissa).  Quantization effects therefore enter
only where hardware narrows the datapath: the cast into the accumulator
format and the cast into the result format.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.hls.config import LayerConfig
from repro.hls.kernels.base import HLSKernel, Shape

__all__ = ["DenseKernel", "Conv1DKernel", "BatchNormKernel"]


class DenseKernel(HLSKernel):
    """``y = xW + b`` on the last axis.

    Applied to a flat vector it is the classic hls4ml dense layer whose
    weights stream from BRAM once per inference (memory-bandwidth bound —
    this is what dominates the MLP IP's latency).  Applied to a
    ``(length, channels)`` tensor it is the U-Net's pointwise head, whose
    small weight set is reused across the 260 positions — the layer the
    paper gives a dedicated reuse factor of 260.
    """

    kind = "dense"

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], kernel: np.ndarray,
                 bias=None):
        fan_in, units = kernel.shape
        (in_shape,) = input_shapes
        if int(in_shape[-1]) != fan_in:
            raise ValueError(
                f"dense {name!r}: input features {in_shape[-1]} != kernel fan_in {fan_in}"
            )
        output_shape = tuple(in_shape[:-1]) + (units,)
        super().__init__(name, config, input_names, input_shapes, output_shape)
        self.quantize_weight("kernel", kernel)
        if bias is not None:
            self.quantize_weight("bias", bias)

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        # acc is freshly allocated by the matmul, so the bias add and the
        # two narrowing casts all run in place.
        acc = x @ self.weights["kernel"]
        if "bias" in self.weights:
            acc += self.weights["bias"]
        return self._to_result_(self._to_accum_(acc))

    @property
    def weight_matrix(self) -> np.ndarray:
        """The 2-D ``(fan_in, units)`` weight view the GEMM contracts over
        (what the graph compiler reasons about)."""
        return self.weights["kernel"]

    @property
    def n_mult_per_position(self) -> int:
        k = self.weights["kernel"]
        return int(k.shape[0] * k.shape[1])

    @property
    def streams_weights(self) -> bool:
        # Flat dense (vector in, vector out): every weight read exactly
        # once per inference → streamed from BRAM.
        return len(self.output_shape) == 1


class Conv1DKernel(HLSKernel):
    """Same-/valid-padded 1-D convolution, stride 1.

    Weights live in registers (they are reused at every sequence
    position), so the layer is compute-bound: the cycle model charges
    ``positions × reuse_factor``.
    """

    kind = "conv1d"

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], kernel: np.ndarray,
                 bias=None, padding: str = "same"):
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
        k, channels, filters = kernel.shape
        (in_shape,) = input_shapes
        if int(in_shape[-1]) != channels:
            raise ValueError(
                f"conv {name!r}: input channels {in_shape[-1]} != kernel channels {channels}"
            )
        length = int(in_shape[0])
        out_len = length if padding == "same" else length - k + 1
        if out_len <= 0:
            raise ValueError(f"conv {name!r}: kernel too large for input")
        super().__init__(name, config, input_names, input_shapes,
                         (out_len, filters))
        self.padding = padding
        self.kernel_size = k
        self.quantize_weight("kernel", kernel)
        if bias is not None:
            self.quantize_weight("bias", bias)

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        k = self.kernel_size
        if self.padding == "same":
            total = k - 1
            left = total // 2
            x = np.pad(x, ((0, 0), (left, total - left), (0, 0)))
        windows = sliding_window_view(x, k, axis=1)  # (n, t, c, k)
        # im2col: flatten each tap window to a row and convolve as one
        # GEMM.  Products and sums are exact in float64 (see module
        # docstring), so the result is bit-identical to the einsum /
        # per-tap formulation regardless of BLAS summation order.
        n, t = windows.shape[0], windows.shape[1]
        col = windows.transpose(0, 1, 3, 2).reshape(n, t, -1)
        acc = col @ self.weights["kernel"].reshape(-1, self.output_shape[-1])
        if "bias" in self.weights:
            acc += self.weights["bias"]
        return self._to_result_(self._to_accum_(acc))

    @property
    def weight_matrix(self) -> np.ndarray:
        """The im2col-flattened ``(k·channels, filters)`` weight matrix —
        row order matches the ``(tap, channel)`` column layout ``forward``
        builds, so per-output-column bounds computed on this view apply to
        every formulation of the convolution."""
        k = self.weights["kernel"]
        return k.reshape(-1, k.shape[-1])

    @property
    def n_mult_per_position(self) -> int:
        k = self.weights["kernel"]
        return int(k.shape[0] * k.shape[1] * k.shape[2])


class BatchNormKernel(HLSKernel):
    """Inference batch-norm folded to ``y = scale·x + shift``.

    hls4ml fuses the four batch-norm tensors into two constant vectors at
    conversion time; the fused constants are what get quantized, so a
    batch-norm that absorbed a 10⁵-magnitude input scale carries that
    scale straight into its fixed-point parameters — the paper's
    train-with-batch-norm failure mode.
    """

    kind = "batchnorm"

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], scale: np.ndarray,
                 shift: np.ndarray):
        (in_shape,) = input_shapes
        if scale.shape != shift.shape or scale.shape[-1] != in_shape[-1]:
            raise ValueError(f"batchnorm {name!r}: scale/shift shape mismatch")
        super().__init__(name, config, input_names, input_shapes, tuple(in_shape))
        self.quantize_weight("scale", scale)
        self.quantize_weight("shift", shift)

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        acc = x * self.weights["scale"]
        acc += self.weights["shift"]
        return self._to_result_(self._to_accum_(acc))

    @property
    def n_mult_per_position(self) -> int:
        return int(self.output_shape[-1])
