"""Fixed-point layer kernels — the generated HLS firmware's C-sim twin.

Each kernel owns its resolved :class:`~repro.hls.config.LayerConfig`
(weight/accumulator/result formats plus reuse factor), pre-quantized
weights, and a ``forward`` implementing exactly what the emitted C++
computes: exact arithmetic on the fixed-point grid followed by casts into
the accumulator and result formats (where rounding and wrap/saturation
happen).  The latency and resource models read the same kernel objects,
so accuracy, latency and resources always describe one consistent design
point.
"""

from repro.hls.kernels.base import HLSKernel
from repro.hls.kernels.linalg import BatchNormKernel, Conv1DKernel, DenseKernel
from repro.hls.kernels.activation import (
    LUT_RANGE,
    LUT_SIZE,
    ReLUKernel,
    SigmoidKernel,
    SoftmaxKernel,
    TanhKernel,
)
from repro.hls.kernels.shape import (
    AvgPoolKernel,
    ConcatKernel,
    FlattenKernel,
    InputKernel,
    LinearKernel,
    MaxPoolKernel,
    ReshapeKernel,
    UpSampleKernel,
)

__all__ = [
    "HLSKernel",
    "DenseKernel",
    "Conv1DKernel",
    "BatchNormKernel",
    "ReLUKernel",
    "SigmoidKernel",
    "TanhKernel",
    "SoftmaxKernel",
    "LUT_SIZE",
    "LUT_RANGE",
    "MaxPoolKernel",
    "AvgPoolKernel",
    "UpSampleKernel",
    "ConcatKernel",
    "FlattenKernel",
    "ReshapeKernel",
    "InputKernel",
    "LinearKernel",
]
