"""Routing / structural kernels: pooling, up-sampling, concat, reshape,
the input quantizer and the identity layer.

These layers move values rather than compute with them; their only
fixed-point effect is the cast into the consumer's stream format (e.g. a
Concatenate whose two inputs arrive with different per-layer formats must
align them onto one grid).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hls.config import LayerConfig
from repro.hls.kernels.base import HLSKernel, Shape

__all__ = [
    "InputKernel",
    "LinearKernel",
    "MaxPoolKernel",
    "AvgPoolKernel",
    "UpSampleKernel",
    "ConcatKernel",
    "FlattenKernel",
    "ReshapeKernel",
]


class InputKernel(HLSKernel):
    """Entry point: quantizes the float input frame onto the input-stream
    grid — the write into the 16-bit on-chip input buffer."""

    kind = "input"

    def __init__(self, name: str, config: LayerConfig, shape: Shape):
        super().__init__(name, config, ["__input__"], [tuple(shape)], tuple(shape))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._to_result(np.asarray(x, dtype=np.float64))


class LinearKernel(HLSKernel):
    """Identity with a format cast (keras 'linear' activations)."""

    kind = "linear"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape]):
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes, tuple(in_shape))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._cast_result(x)


class MaxPoolKernel(HLSKernel):
    """Window maximum (exact comparators on grid values)."""

    kind = "maxpool"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], pool_size: int = 2):
        if pool_size <= 1:
            raise ValueError(f"pool_size must be >= 2, got {pool_size}")
        (in_shape,) = input_shapes
        out_len = int(in_shape[0]) // pool_size
        super().__init__(name, config, input_names, input_shapes,
                         (out_len, int(in_shape[1])))
        self.pool_size = pool_size

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        n, length, c = x.shape
        out_len = length // self.pool_size
        trimmed = x[:, : out_len * self.pool_size, :]
        pooled = trimmed.reshape(n, out_len, self.pool_size, c).max(axis=2)
        return self._cast_result_(pooled)


class AvgPoolKernel(HLSKernel):
    """Window mean; the divide by pool_size is a right-shift for powers
    of two, then a cast (where truncation happens)."""

    kind = "avgpool"

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], pool_size: int = 2):
        if pool_size <= 1:
            raise ValueError(f"pool_size must be >= 2, got {pool_size}")
        (in_shape,) = input_shapes
        out_len = int(in_shape[0]) // pool_size
        super().__init__(name, config, input_names, input_shapes,
                         (out_len, int(in_shape[1])))
        self.pool_size = pool_size

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        n, length, c = x.shape
        out_len = length // self.pool_size
        trimmed = x[:, : out_len * self.pool_size, :]
        pooled = trimmed.reshape(n, out_len, self.pool_size, c).mean(axis=2)
        return self._to_result_(self._to_accum_(pooled))


class UpSampleKernel(HLSKernel):
    """Nearest-neighbour repeat (pure routing)."""

    kind = "upsample"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], size: int = 2):
        if size <= 1:
            raise ValueError(f"size must be >= 2, got {size}")
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes,
                         (int(in_shape[0]) * size, int(in_shape[1])))
        self.size = size

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._cast_result_(np.repeat(x, self.size, axis=1))


class ConcatKernel(HLSKernel):
    """Channel concatenation; aligns both skip-connection operands onto
    this layer's stream format."""

    kind = "concat"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape]):
        head = input_shapes[0]
        channels = sum(int(s[-1]) for s in input_shapes)
        super().__init__(name, config, input_names, input_shapes,
                         tuple(head[:-1]) + (channels,))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        return self._cast_result_(np.concatenate(inputs, axis=-1))

    def channel_slices(self) -> List[tuple]:
        """Per-input ``(start, stop)`` channel ranges in the output —
        the compiled executor copies (and casts) each operand straight
        into its slice instead of materialising the naive concatenation."""
        slices = []
        start = 0
        for shape in self.input_shapes:
            stop = start + int(shape[-1])
            slices.append((start, stop))
            start = stop
        return slices


class FlattenKernel(HLSKernel):
    """Row-major flatten (pure routing, no re-quantization needed but the
    cast keeps the output on the declared result grid)."""

    kind = "flatten"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape]):
        (in_shape,) = input_shapes
        super().__init__(name, config, input_names, input_shapes,
                         (int(np.prod(in_shape)),))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._cast_result(x.reshape(x.shape[0], -1))


class ReshapeKernel(HLSKernel):
    """Static reshape."""

    kind = "reshape"
    grid_preserving = True

    def __init__(self, name: str, config: LayerConfig, input_names,
                 input_shapes: Sequence[Shape], target_shape: Shape):
        super().__init__(name, config, input_names, input_shapes,
                         tuple(int(d) for d in target_shape))

    def forward(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._cast_result(x.reshape((x.shape[0],) + self.output_shape))
