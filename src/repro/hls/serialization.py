"""Persisting converted HLS models.

A converted :class:`~repro.hls.model.HLSModel` is a deployment artefact:
quantized weights plus per-layer formats and reuse factors.  This module
saves and restores it *without the float model*, the way a bitstream +
its build report outlive the training environment.

Format: one ``.npz`` holding every kernel's quantized weights as raw
int64 words plus a JSON architecture/configuration blob.  Loading
reconstructs kernels directly, and a round-tripped model is bit-exact:
``loaded.predict(x) == original.predict(x)`` for every input.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Union

import numpy as np

from repro.fixed import FixedPointFormat, Overflow, Rounding, from_raw, to_raw
from repro.hls.config import HLSConfig, LayerConfig
from repro.hls.kernels import (
    AvgPoolKernel,
    BatchNormKernel,
    ConcatKernel,
    Conv1DKernel,
    DenseKernel,
    FlattenKernel,
    InputKernel,
    LinearKernel,
    MaxPoolKernel,
    ReLUKernel,
    ReshapeKernel,
    SigmoidKernel,
    SoftmaxKernel,
    TanhKernel,
    UpSampleKernel,
)
from repro.hls.model import HLSModel

__all__ = ["save_hls_model", "load_hls_model"]

PathLike = Union[str, os.PathLike]

_KERNEL_CLASSES = {
    cls.kind: cls
    for cls in (
        InputKernel, DenseKernel, Conv1DKernel, BatchNormKernel,
        ReLUKernel, SigmoidKernel, TanhKernel, SoftmaxKernel,
        LinearKernel, MaxPoolKernel, AvgPoolKernel, UpSampleKernel,
        ConcatKernel, FlattenKernel, ReshapeKernel,
    )
}


def _fmt_to_json(fmt: FixedPointFormat) -> Dict:
    return {
        "width": fmt.width,
        "integer": fmt.integer,
        "signed": fmt.signed,
        "rounding": fmt.rounding.value,
        "overflow": fmt.overflow.value,
    }


def _fmt_from_json(blob: Dict) -> FixedPointFormat:
    return FixedPointFormat(
        width=blob["width"], integer=blob["integer"], signed=blob["signed"],
        rounding=Rounding(blob["rounding"]), overflow=Overflow(blob["overflow"]),
    )


def _layer_config_to_json(cfg: LayerConfig) -> Dict:
    return {
        "weight": _fmt_to_json(cfg.weight),
        "result": _fmt_to_json(cfg.result),
        "accum": _fmt_to_json(cfg.accum),
        "reuse_factor": cfg.reuse_factor,
    }


def _layer_config_from_json(blob: Dict) -> LayerConfig:
    return LayerConfig(
        weight=_fmt_from_json(blob["weight"]),
        result=_fmt_from_json(blob["result"]),
        accum=_fmt_from_json(blob["accum"]),
        reuse_factor=blob["reuse_factor"],
    )


def _kernel_extras(kernel) -> Dict:
    """Constructor arguments beyond the common ones."""
    extras: Dict = {}
    if isinstance(kernel, Conv1DKernel):
        extras["padding"] = kernel.padding
    elif isinstance(kernel, (MaxPoolKernel, AvgPoolKernel)):
        extras["pool_size"] = kernel.pool_size
    elif isinstance(kernel, UpSampleKernel):
        extras["size"] = kernel.size
    elif isinstance(kernel, (SigmoidKernel, TanhKernel, SoftmaxKernel)):
        extras["table_size"] = kernel.table_size
        extras["table_range"] = kernel.table_range
    elif isinstance(kernel, ReshapeKernel):
        extras["target_shape"] = list(kernel.output_shape)
    return extras


def save_hls_model(model: HLSModel, path: PathLike) -> None:
    """Serialize *model* (weights as raw fixed-point words + JSON arch)."""
    arch: List[Dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for kernel in model.kernels:
        entry = {
            "name": kernel.name,
            "kind": kernel.kind,
            "input_names": kernel.input_names,
            "input_shapes": [list(s) for s in kernel.input_shapes],
            "output_shape": list(kernel.output_shape),
            "config": _layer_config_to_json(kernel.config),
            "extras": _kernel_extras(kernel),
            "weights": {},
        }
        for key, values in kernel.weights.items():
            array_key = f"{kernel.name}/{key}"
            arrays[array_key] = to_raw(values, kernel.config.weight)
            entry["weights"][key] = {
                "array": array_key,
                "shape": list(values.shape),
            }
        arch.append(entry)
    meta = {
        "name": model.name,
        "strategy": model.config.strategy,
        "clock_hz": model.config.clock_hz,
        "default": _layer_config_to_json(
            model.config.for_layer("__default__")
        ),
        "arch": arch,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(path, **arrays)


def load_hls_model(path: PathLike) -> HLSModel:
    """Reconstruct a model saved by :func:`save_hls_model` (bit-exact)."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        arrays = {k: data[k] for k in data.files if k != "__meta__"}

    default_cfg = _layer_config_from_json(meta["default"])
    config = HLSConfig(default=default_cfg, clock_hz=meta["clock_hz"],
                       strategy=meta["strategy"])
    kernels = []
    for entry in meta["arch"]:
        cfg = _layer_config_from_json(entry["config"])
        config.layers[entry["name"]] = cfg
        cls = _KERNEL_CLASSES[entry["kind"]]
        kwargs = dict(entry["extras"])
        weight_arrays = {}
        for key, w in entry["weights"].items():
            raw = arrays[entry["weights"][key]["array"]]
            weight_arrays[key] = from_raw(raw, cfg.weight).reshape(
                entry["weights"][key]["shape"]
            )
        input_shapes = [tuple(s) for s in entry["input_shapes"]]
        if cls is InputKernel:
            kernel = InputKernel(entry["name"], cfg,
                                 shape=tuple(entry["output_shape"]))
        elif cls in (DenseKernel, Conv1DKernel):
            kernel = cls(entry["name"], cfg, entry["input_names"],
                         input_shapes, kernel=weight_arrays["kernel"],
                         bias=weight_arrays.get("bias"), **kwargs)
        elif cls is BatchNormKernel:
            kernel = cls(entry["name"], cfg, entry["input_names"],
                         input_shapes, scale=weight_arrays["scale"],
                         shift=weight_arrays["shift"])
        elif cls is ReshapeKernel:
            kernel = cls(entry["name"], cfg, entry["input_names"],
                         input_shapes,
                         target_shape=tuple(kwargs.pop("target_shape")))
        else:
            kernel = cls(entry["name"], cfg, entry["input_names"],
                         input_shapes, **kwargs)
        kernels.append(kernel)
    return HLSModel(kernels, config, name=meta["name"])
