"""The converted fixed-point model.

:class:`HLSModel` is the bit-accurate C-simulation twin of the generated
IP core: an ordered DAG of :class:`~repro.hls.kernels.base.HLSKernel`
objects.  ``predict`` runs a whole batch through the quantized datapath;
``trace`` additionally returns every intermediate stream (the hook used
by the verification flow and the outlier analysis of Fig 5b).

Execution is *liveness-planned*: at construction the model precomputes
each kernel's last consumer, and ``predict`` frees every intermediate
stream the moment its final reader has run.  Peak live memory is then
bounded by the widest cut through the DAG (for the U-Net: the deepest
stack of open skip connections) instead of the sum of all intermediate
streams.  ``trace`` keeps the historical keep-everything semantics.

The same planning pass removes redundant requantization: a routing
kernel (flatten, reshape, concat, ...) whose producers already emit the
kernel's own result grid performs no cast at all — quantization is
idempotent on in-range grid values, so skipping it is bit-exact.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.kernels.base import HLSKernel

__all__ = ["HLSModel", "RunStats", "EXECUTORS"]

#: Valid ``HLSModel.predict(executor=...)`` spellings.
EXECUTORS = ("auto", "naive", "plan")

#: Sentinel distinguishing "``compiled`` not passed" from ``None``.
_UNSET = object()

#: Grid widths up to this stay exactly representable through the int64 /
#: float64 round trip, making requantization provably idempotent; wider
#: formats keep the defensive cast.
_EXACT_GRID_WIDTH = 52


@dataclass(frozen=True)
class RunStats:
    """Executor telemetry of the most recent forward pass.

    ``peak_live`` counts the largest number of kernel output streams held
    simultaneously (the model input is not counted); ``freed`` counts the
    intermediates released before the pass returned.  ``compiled`` is
    True when the pass ran on a compiled plan (see
    :meth:`HLSModel.compile`); ``step_times`` holds per-step wall
    seconds when the pass ran with ``profile=True`` — one entry per
    kernel on the naive executor, one per (possibly fused) step on the
    compiled plan, matching the span names the observability layer
    emits.
    """

    peak_live: int
    freed: int
    retained_all: bool
    compiled: bool = False
    step_times: Optional[Dict[str, float]] = None

    @property
    def kernel_times(self) -> Optional[Dict[str, float]]:
        """Deprecated pre-observability spelling of :attr:`step_times`."""
        warnings.warn(
            "RunStats.kernel_times is deprecated; use RunStats.step_times",
            DeprecationWarning, stacklevel=2)
        return self.step_times


class HLSModel:
    """Ordered kernels + their wiring.

    Parameters
    ----------
    kernels:
        Kernels in topological order; the first must be the input kernel
        (``input_names == ["__input__"]``), the last produces the model
        output.
    config:
        The :class:`HLSConfig` the model was converted with (kept for
        reports).
    name:
        Model name, inherited from the source network.
    """

    def __init__(self, kernels: List[HLSKernel], config: HLSConfig,
                 name: str = "hls_model"):
        if not kernels:
            raise ValueError("need at least one kernel")
        if kernels[0].input_names != ["__input__"]:
            raise ValueError("first kernel must be the model input")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValueError("duplicate kernel names")
        known = set()
        for k in kernels:
            for dep in k.input_names:
                if dep != "__input__" and dep not in known:
                    raise ValueError(
                        f"kernel {k.name!r} depends on {dep!r} before it is defined"
                    )
            known.add(k.name)
        self.kernels = list(kernels)
        self.config = config
        self.name = name
        self._by_name = {k.name: k for k in kernels}
        #: stats of the most recent ``predict``/``trace`` call
        self.last_run_stats: Optional[RunStats] = None
        self._dies_after = self._plan_liveness()
        self._plan_requantization()
        #: compiled plan installed by :meth:`compile` (``None`` = naive)
        self._compiled = None
        self.compile_level = 0
        #: optional :class:`~repro.obs.spans.Tracer`; when attached (via
        #: ``ObsConfig(trace_kernels=True)``) every forward pass records
        #: one wall-clock span per kernel / compiled step.  ``None`` is
        #: the zero-cost default.
        self.tracer = None

    # ------------------------------------------------------------------
    # Execution planning
    # ------------------------------------------------------------------
    def _plan_liveness(self) -> List[List[str]]:
        """Per-kernel list of producer streams whose last consumer it is.

        ``_dies_after[i]`` names the intermediates that can be freed the
        moment ``kernels[i]`` has produced its output.  The final
        kernel's own stream is never listed (it is the model output).
        """
        last_consumer: Dict[str, int] = {}
        for idx, kernel in enumerate(self.kernels):
            for dep in kernel.input_names:
                last_consumer[dep] = idx
        dies_after: List[List[str]] = [[] for _ in self.kernels]
        for dep, idx in last_consumer.items():
            if dep != "__input__":
                dies_after[idx].append(dep)
        return dies_after

    def _plan_requantization(self) -> None:
        """Clear the result cast on grid-preserving kernels whose
        producers already emit this kernel's exact result format.

        Safe because quantization is idempotent: a value already on an
        in-range fixed-point grid maps to itself.  Restricted to widths
        whose raw values are exact in float64 (widths ≤ 52 bits); the
        16/18-bit formats the paper uses are far inside that.
        """
        for kernel in self.kernels:
            fmt = kernel.config.result
            if not kernel.grid_preserving or fmt.width > _EXACT_GRID_WIDTH:
                continue
            producers = kernel.input_names
            if "__input__" in producers:
                continue  # raw float input always needs the entry cast
            if all(self._by_name[dep].config.result == fmt
                   for dep in producers):
                kernel.requantize = False

    def planned_peak_live(self) -> int:
        """Peak simultaneously-live streams of the liveness plan.

        Static mirror of the count ``predict`` reports through
        :attr:`last_run_stats` — the regression tests pin both so the
        keep-everything executor cannot silently return.
        """
        live = 0
        peak = 0
        for idx in range(len(self.kernels)):
            live += 1
            peak = max(peak, live)
            live -= len(self._dies_after[idx])
        return peak

    # ------------------------------------------------------------------
    def get_kernel(self, name: str) -> HLSKernel:
        """Kernel lookup by layer name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no kernel named {name!r}") from None

    @property
    def input_shape(self):
        """Input shape excluding batch."""
        return self.kernels[0].input_shapes[0]

    @property
    def output_shape(self):
        """Output shape excluding batch."""
        return self.kernels[-1].output_shape

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, level: int = 2, conv_formulation=None):
        """Install the bit-exact compiled plan (see :mod:`repro.hls.compile`).

        * ``level=0`` — uninstall: back to the naive liveness executor.
        * ``level=1`` — local rewrites: activation LUTs, fused
          MAC+requantize pipelines, per-operand concat casts.
        * ``level=2`` — additionally batch-norm folding (where provably
          exact) and the static arena planner.

        ``conv_formulation`` forces all conv MAC steps onto one
        formulation ("im2col"/"tapflat"/"tap3d") instead of wall-clock
        auto-tuning — outputs are bit-identical either way, only speed
        differs (ignored at level 0, which has no plan).

        Returns the :class:`~repro.hls.compile.CompileReport`.  Every
        rewrite is proven bit-identical at compile time or refused, so
        ``predict`` outputs are unchanged at any level (``trace`` always
        runs the naive graph — the verification flow needs every
        intermediate stream).
        """
        if level not in (0, 1, 2):
            raise ValueError(f"compile level must be 0, 1 or 2, got {level}")
        from repro.hls.compile import CompileReport, compile_model
        if level == 0:
            self._compiled = None
            self.compile_level = 0
            return CompileReport(level=0)
        plan = compile_model(self, level, conv_formulation=conv_formulation)
        self._compiled = plan
        self.compile_level = level
        return plan.report

    @property
    def compiled(self) -> bool:
        """True when a compiled plan is installed."""
        return self._compiled is not None

    @property
    def compiled_plan(self):
        """The installed :class:`~repro.hls.compile.CompiledPlan` (or None)."""
        return self._compiled

    # ------------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != tuple(self.input_shape):
            raise ValueError(
                f"expected input shape (n, {self.input_shape}), got {x.shape}"
            )
        return x

    def _run(self, x: np.ndarray, retain_all: bool = False,
             profile: bool = False) -> Dict[str, np.ndarray]:
        x = self._check_input(x)
        values: Dict[str, np.ndarray] = {}
        peak = 0
        freed = 0
        tracer = self.tracer
        timed = profile or tracer is not None
        times: Optional[Dict[str, float]] = {} if profile else None
        for idx, kernel in enumerate(self.kernels):
            ins = [
                x if dep == "__input__" else values[dep]
                for dep in kernel.input_names
            ]
            if timed:
                t0 = _time.perf_counter()
            values[kernel.name] = kernel.forward(ins)
            if timed:
                t1 = _time.perf_counter()
                if profile:
                    times[kernel.name] = t1 - t0
                if tracer is not None:
                    tracer.record(f"kernel.{kernel.name}",
                                  wall_t0=t0, wall_t1=t1)
            if len(values) > peak:
                peak = len(values)
            if not retain_all:
                for dep in self._dies_after[idx]:
                    del values[dep]
                    freed += 1
        self.last_run_stats = RunStats(peak_live=peak, freed=freed,
                                       retained_all=retain_all,
                                       step_times=times)
        return values

    def predict(self, x: np.ndarray, *, profile: bool = False,
                executor: Optional[str] = None,
                compiled=_UNSET) -> np.ndarray:
        """Quantized inference over a batch ``(n, *input_shape)``.

        ``executor`` selects the execution path:

        * ``"auto"`` (default) — the compiled plan when one is installed
          (see :meth:`compile`), the naive liveness executor otherwise;
        * ``"naive"`` — force the naive executor (the bit-identity tests
          compare the two);
        * ``"plan"`` — require the compiled plan (raises if none).

        ``profile=True`` records per-step wall time into
        ``last_run_stats.step_times``.  The ``compiled=`` boolean is the
        deprecated pre-facade spelling (True → ``"plan"``, False →
        ``"naive"``, None → ``"auto"``).

        Intermediate streams are freed as soon as their last consumer has
        run (naive path) or live in preassigned arena slots (compiled
        path), so peak memory is the plan's peak cut, not the whole DAG.
        """
        if compiled is not _UNSET:
            warnings.warn(
                "predict(compiled=...) is deprecated; use "
                "executor='plan'/'naive'/'auto'",
                DeprecationWarning, stacklevel=2)
            if executor is None:
                executor = ("plan" if compiled is True
                            else "naive" if compiled is False else "auto")
        if executor is None:
            executor = "auto"
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}")
        plan = self._compiled
        if executor == "plan" and plan is None:
            raise ValueError("no compiled plan installed; call compile()")
        if plan is not None and executor != "naive":
            x = self._check_input(x)
            y, peak, freed, times = plan.run(x, profile=profile,
                                             tracer=self.tracer)
            self.last_run_stats = RunStats(peak_live=peak, freed=freed,
                                           retained_all=False, compiled=True,
                                           step_times=times)
            return y
        return self._run(x, profile=profile)[self.kernels[-1].name]

    def trace(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-kernel output streams (keyed by layer name).

        Keeps every intermediate alive and always executes the naive
        graph — fused compiled steps do not materialise every stream;
        use :meth:`predict` for the fast path.
        """
        return self._run(x, retain_all=True)

    # ------------------------------------------------------------------
    def count_weights(self) -> int:
        """Total quantized parameter scalars."""
        return sum(k.weight_words for k in self.kernels)

    def total_multiplications(self) -> int:
        """Total MACs per inference across all kernels."""
        return sum(k.n_mult_total for k in self.kernels)

    def summary(self) -> str:
        """Per-kernel description dump."""
        lines = [f"HLSModel: {self.name} (strategy={self.config.strategy})"]
        lines.extend("  " + k.describe() for k in self.kernels)
        lines.append(
            f"  total weights={self.count_weights():,} "
            f"MACs/inference={self.total_multiplications():,}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HLSModel {self.name!r}: {len(self.kernels)} kernels>"
