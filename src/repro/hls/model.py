"""The converted fixed-point model.

:class:`HLSModel` is the bit-accurate C-simulation twin of the generated
IP core: an ordered DAG of :class:`~repro.hls.kernels.base.HLSKernel`
objects.  ``predict`` runs a whole batch through the quantized datapath;
``trace`` additionally returns every intermediate stream (the hook used
by the verification flow and the outlier analysis of Fig 5b).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.kernels.base import HLSKernel

__all__ = ["HLSModel"]


class HLSModel:
    """Ordered kernels + their wiring.

    Parameters
    ----------
    kernels:
        Kernels in topological order; the first must be the input kernel
        (``input_names == ["__input__"]``), the last produces the model
        output.
    config:
        The :class:`HLSConfig` the model was converted with (kept for
        reports).
    name:
        Model name, inherited from the source network.
    """

    def __init__(self, kernels: List[HLSKernel], config: HLSConfig,
                 name: str = "hls_model"):
        if not kernels:
            raise ValueError("need at least one kernel")
        if kernels[0].input_names != ["__input__"]:
            raise ValueError("first kernel must be the model input")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValueError("duplicate kernel names")
        known = set()
        for k in kernels:
            for dep in k.input_names:
                if dep != "__input__" and dep not in known:
                    raise ValueError(
                        f"kernel {k.name!r} depends on {dep!r} before it is defined"
                    )
            known.add(k.name)
        self.kernels = list(kernels)
        self.config = config
        self.name = name
        self._by_name = {k.name: k for k in kernels}

    # ------------------------------------------------------------------
    def get_kernel(self, name: str) -> HLSKernel:
        """Kernel lookup by layer name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no kernel named {name!r}") from None

    @property
    def input_shape(self):
        """Input shape excluding batch."""
        return self.kernels[0].input_shapes[0]

    @property
    def output_shape(self):
        """Output shape excluding batch."""
        return self.kernels[-1].output_shape

    # ------------------------------------------------------------------
    def _run(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != tuple(self.input_shape):
            raise ValueError(
                f"expected input shape (n, {self.input_shape}), got {x.shape}"
            )
        values: Dict[str, np.ndarray] = {}
        for kernel in self.kernels:
            ins = [
                x if dep == "__input__" else values[dep]
                for dep in kernel.input_names
            ]
            values[kernel.name] = kernel.forward(ins)
        return values

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference over a batch ``(n, *input_shape)``."""
        return self._run(x)[self.kernels[-1].name]

    def trace(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-kernel output streams (keyed by layer name)."""
        return self._run(x)

    # ------------------------------------------------------------------
    def count_weights(self) -> int:
        """Total quantized parameter scalars."""
        return sum(k.weight_words for k in self.kernels)

    def total_multiplications(self) -> int:
        """Total MACs per inference across all kernels."""
        return sum(k.n_mult_total for k in self.kernels)

    def summary(self) -> str:
        """Per-kernel description dump."""
        lines = [f"HLSModel: {self.name} (strategy={self.config.strategy})"]
        lines.extend("  " + k.describe() for k in self.kernels)
        lines.append(
            f"  total weights={self.count_weights():,} "
            f"MACs/inference={self.total_multiplications():,}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HLSModel {self.name!r}: {len(self.kernels)} kernels>"
