"""Per-layer value profiling.

The paper's central optimization: "we re-evaluated the maximum absolute
output value generated inside each individual layer of the model.  Using
this maximum, we calculated the required number of integer bits for each
layer" (Section IV-D).  :func:`profile_model` runs the *float* network
over a representative dataset and records, per layer, the maximum
absolute activation and maximum absolute weight — the two numbers the
precision optimizer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.nn.model import Model

__all__ = ["LayerProfile", "profile_model"]


@dataclass(frozen=True)
class LayerProfile:
    """Observed value ranges for one layer.

    Attributes
    ----------
    max_abs_output:
        Largest |activation| the layer produced over the profiling set.
    max_abs_weight:
        Largest |parameter| (0.0 for parameter-free layers).
    output_percentile_99:
        99th percentile of |activation| — kept for diagnostics; the
        optimizer uses the max, as the paper does.
    """

    max_abs_output: float
    max_abs_weight: float
    output_percentile_99: float

    def __post_init__(self):
        if self.max_abs_output < 0 or self.max_abs_weight < 0:
            raise ValueError("profile magnitudes must be non-negative")


def profile_model(model: Model, x: np.ndarray,
                  batch_size: int = 256) -> Dict[str, LayerProfile]:
    """Profile every layer of *model* on dataset *x*.

    Runs inference-mode forward passes in batches (the profiling set can
    be the full training split) and accumulates per-layer maxima.
    Returns ``{layer_name: LayerProfile}`` including the input layer
    (whose "activation" is the standardized input itself — the paper's
    input-buffer precision is derived from it).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[0] == 0:
        raise ValueError("profiling dataset is empty")
    max_out: Dict[str, float] = {}
    p99_samples: Dict[str, list] = {}
    for start in range(0, x.shape[0], batch_size):
        batch = x[start:start + batch_size]
        model.forward(batch, training=False)
        for layer in model.layers:
            out = model._last_outputs[layer]
            a = np.abs(out)
            max_out[layer.name] = max(max_out.get(layer.name, 0.0), float(a.max()))
            p99_samples.setdefault(layer.name, []).append(
                float(np.percentile(a, 99))
            )
    profiles = {}
    for layer in model.layers:
        w_max = 0.0
        if layer.params:
            w_max = max(float(np.abs(p).max()) for p in layer.params.values())
        profiles[layer.name] = LayerProfile(
            max_abs_output=max_out[layer.name],
            max_abs_weight=w_max,
            output_percentile_99=float(np.max(p99_samples[layer.name])),
        )
    return profiles
