"""Cycle-level latency model of the generated IP core.

Model (documented assumptions, calibrated against the paper's measured
FPGA latencies — 1.57 ms U-Net IP, ≈0.13 ms MLP IP at 100 MHz):

1. **Reuse semantics.**  A multiply-accumulate layer with reuse factor
   ``RF`` instantiates ``n_mult / RF`` multipliers and accepts one new
   sequence position every ``RF`` cycles (initiation interval = RF, the
   hls4ml contract).  A layer spanning ``L`` positions therefore streams
   for ``L × RF`` cycles plus its pipeline fill depth.
2. **No cross-layer dataflow overlap.**  The paper's design buffers whole
   feature maps in on-chip RAM between layers (its "deadlock mitigation"
   buffer sizing); layers execute back-to-back, so the IP latency is the
   *sum* of per-layer cycles plus a per-layer synchronisation overhead.
3. **Weight streaming.**  A flat dense layer reads each of its
   ``n_in × n_out`` weights exactly once per inference from on-chip RAM
   through ``WEIGHT_BANKS`` parallel banks; it can never run faster than
   ``weight_words / WEIGHT_BANKS`` cycles.  (Convolutions and pointwise
   dense layers keep their small weight sets in registers and are
   compute-bound.)  This is what makes the 100k-parameter MLP IP take
   ≈0.13 ms despite its trivial compute depth.
4. **Host interface.**  The Avalon MM host reads the input buffer and
   writes the output buffer sequentially at ``MM_CYCLES_PER_WORD`` cycles
   per 16-bit word (pipelined sequential access, paper Section IV-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.hls.kernels.base import HLSKernel
from repro.hls.model import HLSModel

__all__ = ["LatencyReport", "estimate_latency", "kernel_cycles"]

#: Parallel on-chip RAM banks feeding weight streams (assumption 3).
WEIGHT_BANKS = 8
#: Avalon MM host interface throughput, cycles per word (assumption 4).
MM_CYCLES_PER_WORD = 2
#: Per-layer start/finish handshake cost (assumption 2).
LAYER_SYNC_CYCLES = 12
#: Multiplier + adder-tree pipeline latency floor.
PIPELINE_DEPTH_BASE = 6


def _pipeline_depth(kernel: HLSKernel) -> int:
    """Fill depth: multiplier latency + log2 adder tree."""
    n = max(kernel.n_mult_per_position, 1)
    return PIPELINE_DEPTH_BASE + int(math.ceil(math.log2(n + 1)))


def kernel_cycles(kernel: HLSKernel) -> int:
    """Cycles one kernel occupies the datapath (assumptions 1–3)."""
    positions = kernel.sequence_positions
    rf = kernel.config.reuse_factor
    if kernel.n_mult_per_position > 0 or kernel.kind in ("sigmoid", "tanh",
                                                         "softmax"):
        # MAC layers and table activations share the reuse-factor II.
        compute = positions * rf + _pipeline_depth(kernel)
    else:
        # Routing layers stream one element group per cycle.
        compute = positions + _pipeline_depth(kernel)
    if kernel.streams_weights:
        streaming = int(math.ceil(kernel.weight_words / WEIGHT_BANKS))
        compute = max(compute, streaming)
    return compute + LAYER_SYNC_CYCLES


@dataclass(frozen=True)
class LatencyReport:
    """Cycle/latency breakdown of one converted model.

    ``per_layer_cycles`` preserves kernel order; ``total_cycles`` adds the
    host-interface transfer cycles.
    """

    per_layer_cycles: Dict[str, int]
    transfer_cycles: int
    clock_hz: float

    @property
    def compute_cycles(self) -> int:
        """Cycles spent inside kernels."""
        return sum(self.per_layer_cycles.values())

    @property
    def total_cycles(self) -> int:
        """Kernel cycles plus host-interface transfers."""
        return self.compute_cycles + self.transfer_cycles

    @property
    def latency_s(self) -> float:
        """IP-core latency in seconds at the configured clock."""
        return self.total_cycles / self.clock_hz

    def slowest_layers(self, n: int = 5):
        """The *n* most expensive kernels, ``[(name, cycles), ...]``."""
        return sorted(self.per_layer_cycles.items(),
                      key=lambda kv: kv[1], reverse=True)[:n]


def estimate_latency(model: HLSModel) -> LatencyReport:
    """Estimate the IP-core latency of a converted model."""
    per_layer = {k.name: kernel_cycles(k) for k in model.kernels}
    n_in = int(math.prod(model.input_shape))
    n_out = int(math.prod(model.output_shape))
    transfers = (n_in + n_out) * MM_CYCLES_PER_WORD
    return LatencyReport(
        per_layer_cycles=per_layer,
        transfer_cycles=transfers,
        clock_hz=model.config.clock_hz,
    )
