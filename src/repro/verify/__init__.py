"""Staged verification flow (paper Section IV-C).

The paper verifies the system bottom-up: (1) the control IP alone,
(2) the hls4ml-generated IP against Keras outputs, (3) the FPGA-side
subsystem (RAMs + control + IP), (4) the bridge with a trivial adder
component, (5) interrupts, (6) everything combined under SignalTap.
This package reproduces that flow against the simulated board:

* :mod:`~repro.verify.comparators` — the paper's metrics: the
  within-0.20 "close enough" accuracy (Table II), per-machine mean
  absolute difference (Fig 5a) and outlier counts (Fig 5b),
* :mod:`~repro.verify.stages` — one callable per verification stage,
* :mod:`~repro.verify.flow` — the orchestrator running all stages and
  producing a pass/fail report.
"""

from repro.verify.comparators import (
    close_enough_accuracy,
    mean_abs_diff_per_machine,
    outlier_count,
    split_machine_channels,
)
from repro.verify.stages import (
    StageResult,
    verify_bridge_with_adder,
    verify_control_ip,
    verify_cyclone_bringup,
    verify_hls_against_float,
    verify_interrupt_path,
    verify_soc_subsystem,
)
from repro.verify.flow import VerificationFlow
from repro.verify.testbench import read_vector_file, write_test_vectors

__all__ = [
    "close_enough_accuracy",
    "mean_abs_diff_per_machine",
    "outlier_count",
    "split_machine_channels",
    "StageResult",
    "verify_control_ip",
    "verify_hls_against_float",
    "verify_soc_subsystem",
    "verify_bridge_with_adder",
    "verify_interrupt_path",
    "verify_cyclone_bringup",
    "VerificationFlow",
    "write_test_vectors",
    "read_vector_file",
]
