"""Comparison metrics between float (Keras) and quantized (HLS) outputs.

The paper's accuracy definition (Section IV-D): a quantized output is
"close enough" when it is within **0.20** of the pre-trained model's
output, the full output range being [0, 1].  Outputs interleave the two
machines monitor-major (``[m0_MI, m0_RR, m1_MI, m1_RR, …]``), so every
metric is reported per machine — the MI/RR asymmetry is a headline
observation (Fig 5a).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "CLOSE_ENOUGH_THRESHOLD",
    "split_machine_channels",
    "close_enough_accuracy",
    "mean_abs_diff_per_machine",
    "outlier_count",
]

#: Paper Section IV-D: |Δ| ≤ 0.20 on a [0, 1] output counts as correct.
CLOSE_ENOUGH_THRESHOLD = 0.20


def split_machine_channels(flat: np.ndarray,
                           n_machines: int = 2) -> np.ndarray:
    """Reshape flat outputs ``(n, monitors*machines)`` →
    ``(n, monitors, machines)`` (monitor-major, machine-minor)."""
    flat = np.asarray(flat, dtype=np.float64)
    if flat.ndim != 2:
        raise ValueError(f"expected 2-D outputs, got {flat.shape}")
    if flat.shape[1] % n_machines:
        raise ValueError(
            f"output width {flat.shape[1]} not divisible by {n_machines}"
        )
    return flat.reshape(flat.shape[0], -1, n_machines)


def _check_pair(y_ref: np.ndarray, y_test: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_ref = np.asarray(y_ref, dtype=np.float64)
    y_test = np.asarray(y_test, dtype=np.float64)
    if y_ref.shape != y_test.shape:
        raise ValueError(f"shape mismatch: {y_ref.shape} vs {y_test.shape}")
    return y_ref, y_test


def close_enough_accuracy(y_ref: np.ndarray, y_test: np.ndarray,
                          threshold: float = CLOSE_ENOUGH_THRESHOLD,
                          machine_names: Sequence[str] = ("MI", "RR"),
                          ) -> Dict[str, float]:
    """Per-machine fraction of outputs within *threshold* of the
    reference — the Table II accuracy columns."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    y_ref, y_test = _check_pair(y_ref, y_test)
    ref = split_machine_channels(y_ref, len(machine_names))
    test = split_machine_channels(y_test, len(machine_names))
    close = np.abs(ref - test) <= threshold
    return {
        name: float(close[:, :, i].mean())
        for i, name in enumerate(machine_names)
    }


def mean_abs_diff_per_machine(y_ref: np.ndarray, y_test: np.ndarray,
                              machine_names: Sequence[str] = ("MI", "RR"),
                              ) -> Dict[str, float]:
    """Per-machine mean |quantized − float| — the Fig 5a series
    (paper values at 16 bits: ≈0.025 MI, ≈0.005 RR)."""
    y_ref, y_test = _check_pair(y_ref, y_test)
    ref = split_machine_channels(y_ref, len(machine_names))
    test = split_machine_channels(y_test, len(machine_names))
    diff = np.abs(ref - test)
    return {
        name: float(diff[:, :, i].mean())
        for i, name in enumerate(machine_names)
    }


def outlier_count(y_ref: np.ndarray, y_test: np.ndarray,
                  threshold: float = CLOSE_ENOUGH_THRESHOLD) -> int:
    """Number of output values whose error exceeds *threshold* — the
    "abnormal points" of Fig 5b (attributed to inner-layer overflows)."""
    y_ref, y_test = _check_pair(y_ref, y_test)
    return int((np.abs(y_ref - y_test) > threshold).sum())
