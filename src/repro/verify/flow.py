"""The orchestrated verification flow.

"After the system is verified any future verification effort only needs
to focus on the incremental updates of the IP alone" (Section IV-C):
:class:`VerificationFlow` runs all six stages for a model/board pair and
renders a report; :meth:`VerificationFlow.verify_ip_update` re-runs only
the IP-facing stages, which is the paper's incremental re-verification
story.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hls.model import HLSModel
from repro.nn.model import Model
from repro.soc.board import AchillesBoard
from repro.verify.stages import (
    StageResult,
    verify_bridge_with_adder,
    verify_control_ip,
    verify_cyclone_bringup,
    verify_hls_against_float,
    verify_interrupt_path,
    verify_soc_subsystem,
)

__all__ = ["VerificationFlow"]


class VerificationFlow:
    """Run the staged verification of one deployed design.

    Parameters
    ----------
    model / hls_model / board:
        The float network, its converted fixed-point twin, and the board
        hosting it.
    """

    def __init__(self, model: Model, hls_model: HLSModel,
                 board: Optional[AchillesBoard] = None):
        self.model = model
        self.hls_model = hls_model
        self.board = board or AchillesBoard(hls_model)
        self.results: List[StageResult] = []

    # ------------------------------------------------------------------
    def run_all(self, x: np.ndarray, n_subsystem_frames: int = 3,
                min_accuracy: float = 0.95) -> List[StageResult]:
        """Run every stage on profiling data *x* ``(n, n_inputs)``."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(x.shape[0], -1)
        shaped = x.reshape((x.shape[0],) + tuple(self.hls_model.input_shape))
        self.results = [
            verify_cyclone_bringup(),
            verify_control_ip(),
            verify_hls_against_float(self.model, self.hls_model, shaped,
                                     min_accuracy=min_accuracy),
            verify_soc_subsystem(self.board, self.hls_model,
                                 flat[:n_subsystem_frames]),
            verify_bridge_with_adder(),
            verify_interrupt_path(self.board, flat[0]),
        ]
        return self.results

    def verify_ip_update(self, x: np.ndarray,
                         min_accuracy: float = 0.95) -> List[StageResult]:
        """Incremental flow after swapping the IP: only stages 2–3."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(x.shape[0], -1)
        shaped = x.reshape((x.shape[0],) + tuple(self.hls_model.input_shape))
        self.results = [
            verify_hls_against_float(self.model, self.hls_model, shaped,
                                     min_accuracy=min_accuracy),
            verify_soc_subsystem(self.board, self.hls_model, flat[:3]),
        ]
        return self.results

    # ------------------------------------------------------------------
    @property
    def passed(self) -> bool:
        """All executed stages passed (False when none ran)."""
        return bool(self.results) and all(r.passed for r in self.results)

    def report(self) -> str:
        """Multi-line pass/fail report."""
        if not self.results:
            return "no stages executed"
        lines = [str(r) for r in self.results]
        lines.append(f"=> {'ALL PASS' if self.passed else 'FAILURES PRESENT'}")
        return "\n".join(lines)
