"""Test-vector management for the emitted C++ testbench.

The generated project's ``<model>_test.cpp`` loads ``tb_input.dat`` and
``tb_expected.dat``; this module produces those files from the Python
side of the flow (float inputs quantized to the input stream grid, and
the bit-accurate expected outputs), and can read them back for
round-trip checks.  File format: one ASCII line per frame, raw
(scaled-integer) words separated by spaces — the format hls4ml's
testbenches conventionally use.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.fixed import from_raw, to_raw
from repro.hls.model import HLSModel

__all__ = ["write_test_vectors", "read_vector_file"]

PathLike = Union[str, os.PathLike]


def write_test_vectors(hls_model: HLSModel, frames: np.ndarray,
                       directory: PathLike) -> Tuple[Path, Path]:
    """Write ``tb_input.dat`` / ``tb_expected.dat`` for *frames*.

    *frames* is ``(n, *input_shape)`` float data.  Inputs are stored as
    raw words of the input kernel's stream format; expected outputs are
    the bit-accurate predictions in the output stream's raw words.
    Returns the two paths.
    """
    frames = np.asarray(frames, dtype=np.float64)
    expected_shape = tuple(hls_model.input_shape)
    if frames.shape[1:] != expected_shape:
        raise ValueError(
            f"frames must be (n, {expected_shape}), got {frames.shape}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    in_fmt = hls_model.kernels[0].config.result
    out_fmt = hls_model.kernels[-1].config.result

    raw_in = to_raw(frames.reshape(frames.shape[0], -1), in_fmt)
    predictions = hls_model.predict(frames)
    raw_out = to_raw(predictions.reshape(frames.shape[0], -1), out_fmt)

    input_path = directory / "tb_input.dat"
    expected_path = directory / "tb_expected.dat"
    _write_raw(input_path, raw_in)
    _write_raw(expected_path, raw_out)
    return input_path, expected_path


def _write_raw(path: Path, raw: np.ndarray) -> None:
    with path.open("w") as fh:
        for row in raw:
            fh.write(" ".join(str(int(v)) for v in row))
            fh.write("\n")


def read_vector_file(path: PathLike, fmt=None) -> np.ndarray:
    """Read a ``.dat`` vector file back.

    Returns raw int64 words ``(n_frames, n_words)``; pass the matching
    :class:`~repro.fixed.FixedPointFormat` as *fmt* to get float values
    instead.
    """
    rows = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rows.append([int(tok) for tok in line.split()])
    if not rows:
        raise ValueError(f"no vectors in {path}")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise ValueError(f"ragged vector file {path}: widths {sorted(widths)}")
    raw = np.array(rows, dtype=np.int64)
    if fmt is None:
        return raw
    return from_raw(raw, fmt)
