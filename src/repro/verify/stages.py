"""Individual verification stages.

Each stage returns a :class:`StageResult` instead of raising, so the
flow can report every failure at once — like a regression run over the
paper's six testbenches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.hls.model import HLSModel
from repro.nn.model import Model
from repro.soc.avalon import LIGHTWEIGHT_BRIDGE
from repro.soc.board import AchillesBoard
from repro.soc.control import ControlIP, ControlState
from repro.soc.ocram import DualPortRAM
from repro.soc.trace import SignalTrace
from repro.verify.comparators import close_enough_accuracy

__all__ = [
    "StageResult",
    "verify_control_ip",
    "verify_hls_against_float",
    "verify_soc_subsystem",
    "verify_bridge_with_adder",
    "verify_interrupt_path",
    "verify_cyclone_bringup",
]


@dataclass(frozen=True)
class StageResult:
    """Outcome of one verification stage."""

    stage: str
    passed: bool
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        extras = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{status}] {self.stage}" + (f" ({extras})" if extras else "")


def verify_control_ip() -> StageResult:
    """Stage 1: drive the handshake FSM through every legal transition
    and assert the illegal ones are rejected (the VHDL testbench on the
    Cyclone V in the paper)."""
    started, irqs = [], []
    ctl = ControlIP(start_ip=lambda: started.append(True),
                    raise_irq=lambda: irqs.append(True))
    ok = True
    details: Dict[str, object] = {}
    try:
        assert ctl.csr_read(ControlIP.STATUS) == 0
        ctl.csr_write(ControlIP.TRIGGER, 1)
        assert ctl.state is ControlState.RUNNING and started
        # Illegal: re-trigger while running.
        try:
            ctl.csr_write(ControlIP.TRIGGER, 1)
            ok = False
            details["retrigger"] = "not rejected"
        except RuntimeError:
            pass
        ctl.ip_done()
        assert ctl.state is ControlState.DONE_IRQ and irqs
        assert ctl.csr_read(ControlIP.STATUS) == 2
        ctl.csr_write(ControlIP.IRQ_ACK, 1)
        assert ctl.state is ControlState.IDLE
        # Illegal: spurious done pulse while idle.
        try:
            ctl.ip_done()
            ok = False
            details["spurious_done"] = "not rejected"
        except RuntimeError:
            pass
    except AssertionError as exc:
        ok = False
        details["assertion"] = repr(exc)
    return StageResult("control_ip_fsm", ok, details)


def verify_hls_against_float(model: Model, hls_model: HLSModel,
                             x: np.ndarray,
                             min_accuracy: float = 0.95) -> StageResult:
    """Stage 2: HLS C-sim vs Keras outputs using the paper's within-0.20
    accuracy metric (the hls4ml-translation check)."""
    y_float = model.forward(np.asarray(x, dtype=np.float64))
    y_fixed = hls_model.predict(np.asarray(x, dtype=np.float64))
    acc = close_enough_accuracy(y_float, y_fixed)
    passed = all(v >= min_accuracy for v in acc.values())
    return StageResult("hls_vs_float", passed,
                       {k: round(v, 4) for k, v in acc.items()})


def verify_soc_subsystem(board: AchillesBoard, hls_model: HLSModel,
                         frames: np.ndarray) -> StageResult:
    """Stage 3: the FPGA-side subsystem must produce outputs
    *bit-identical* to the HLS C-sim once both sides' buffer quantization
    is accounted for (on-board vs co-simulation equivalence)."""
    frames = np.asarray(frames, dtype=np.float64)
    result = board.run(frames)
    shaped = frames.reshape((frames.shape[0],) + tuple(hls_model.input_shape))
    expected = hls_model.predict(shaped).reshape(frames.shape[0], -1)
    # The output buffer narrows to its 16-bit stream format:
    expected_raw = np.stack([board.ip.quantize_input(f) for f in frames])
    del expected_raw  # inputs already identical; outputs compared below
    from repro.fixed import quantize

    expected_words = quantize(expected, board.ip.output_format)
    exact = np.array_equal(result.outputs, expected_words)
    max_diff = float(np.abs(result.outputs - expected_words).max()) if not exact else 0.0
    return StageResult("soc_vs_hls_bit_exact", exact, {"max_diff": max_diff})


def verify_bridge_with_adder() -> StageResult:
    """Stage 4: the paper validates the memory-mapped bridge path with a
    trivial adder component before trusting it with the real IP.  We do
    the same: write two operands through the bridge into a RAM, "run" the
    adder, read the sum back."""
    ram = DualPortRAM(8, 16, "adder_scratch")
    a, b = 12_345, -2_345
    ram.poke(0, a)
    ram.poke(1, b)
    total = ram.peek(0) + ram.peek(1)
    ram.poke(2, total)
    ok = ram.peek(2) == 10_000
    # Timing sanity on the CSR bridge used for the pokes:
    t = LIGHTWEIGHT_BRIDGE.write_time(3) + LIGHTWEIGHT_BRIDGE.read_time(3)
    return StageResult("bridge_adder", ok and t > 0,
                       {"sum": ram.peek(2), "bus_time_us": round(t * 1e6, 3)})


def verify_interrupt_path(board: AchillesBoard,
                          frame: Optional[np.ndarray] = None) -> StageResult:
    """Stage 5/6: one frame end to end with SignalTap-style capture; the
    trigger → busy → irq ordering must hold and the IRQ must be acked."""
    if board.trace is None:
        board.trace = SignalTrace()
    if frame is None:
        frame = np.zeros(board.ip.n_inputs)
    board.process_frame(np.asarray(frame, dtype=np.float64))
    ordered = board.trace.assert_order("trigger", "ip_busy", "irq")
    idle = board.control.state is ControlState.IDLE
    return StageResult("interrupt_path", bool(ordered and idle),
                       {"signal_order": ordered, "fsm_idle": idle})


def verify_cyclone_bringup(min_accuracy: float = 0.9) -> StageResult:
    """Stage 0 (pre-integration): the paper brings sub-systems up on a
    smaller Cyclone V board with a small MLP before committing to the
    Arria 10 ("we started with a simpler model, a small MLP, and verified
    each stage").  Reproduced: build a small MLP, convert it, check that
    it *fits the Cyclone V* and that the board produces bit-exact
    outputs vs the C-sim."""
    from repro.hls.converter import convert as _convert
    from repro.hls.config import HLSConfig
    from repro.hls.device import CYCLONE_V
    from repro.hls.resources import estimate_resources
    from repro.nn.layers.activations import ReLU as _ReLU, Sigmoid as _Sigmoid
    from repro.nn.layers.dense import Dense as _Dense
    from repro.nn.layers.input import Input as _Input
    from repro.nn.model import Model as _Model

    inp = _Input((32,), name="bringup_in")
    x = _Dense(16, seed=5, name="bringup_h")(inp)
    x = _ReLU(name="bringup_r")(x)
    x = _Dense(8, seed=6, name="bringup_o")(x)
    out = _Sigmoid(name="bringup_s")(x)
    small = _Model(inp, out, name="bringup_mlp")

    hls_small = _convert(small, HLSConfig())
    res = estimate_resources(hls_small, CYCLONE_V)
    board = AchillesBoard(hls_small)
    frames = np.linspace(-2.0, 2.0, 64).reshape(2, 32)
    sub = verify_soc_subsystem(board, hls_small, frames)
    acc_stage = verify_hls_against_float(small, hls_small,
                                         frames, min_accuracy=min_accuracy)
    passed = res.fits and sub.passed and acc_stage.passed
    return StageResult("cyclone_v_bringup", passed, {
        "fits_cyclone_v": res.fits,
        "alm_fraction": round(res.alm_fraction, 3),
        "bit_exact": sub.passed,
    })
