"""Every number the paper publishes, in one typed place.

The experiment notes and EXPERIMENTS.md compare against these values;
keeping them centralized (with section references) makes the comparison
auditable and gives downstream users a machine-readable record of the
reproduction target.

All values are copied verbatim from: R. Shi, S. Ogrenci, et al.,
"ML-Based Real-Time Control at the Edge: An Approach Using hls4ml",
IPPS 2024.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

__all__ = [
    "SYSTEM", "UNET", "MLP", "TABLE2", "TABLE3", "FIG5",
    "PrecisionRow",
]

#: Deployment requirements and headline performance (Abstract, §I, §VI).
SYSTEM = MappingProxyType({
    "deadline_s": 3e-3,             # BLM digitizer poll rate
    "required_fps": 320,            # practical deployment requirement
    "achieved_fps": 575,            # paper's measured throughput
    "clock_hz": 100e6,              # fabric clock (§VI)
    "n_monitors": 260,              # BLMs around the tunnel (Fig 1)
    "n_outputs": 520,               # two probabilities per monitor
    "n_hubs": 7,                    # BLM hubs feeding the central node
    "raw_counts_range": (105_000, 120_000),  # §IV-D data magnitudes
})

#: The deployed U-Net (§III-A, Table I, Table III, §V).
UNET = MappingProxyType({
    "params": 134_434,
    "system_latency_ms": 1.74,
    "ip_latency_ms": 1.57,
    "latency_range_ms": (1.73, 2.27),
    "fraction_below_1p9ms": 0.9997,
    "mean_output_mi": 0.17,
    "mean_output_rr": 0.42,
    "mean_abs_diff_mi": 0.025,      # Fig 5a at the deployed precision
    "mean_abs_diff_rr": 0.005,
    "default_reuse_factor": 32,
    "dense_sigmoid_reuse_factor": 260,
})

#: The verification MLP (§III-A, Table I, §V).
MLP = MappingProxyType({
    "params": 100_102,
    "hidden_units": 128,
    "output_units": 518,
    "system_latency_ms": 0.31,
    "latency_range_ms": (0.26, 0.91),
    "precision_bits": 16,
    "alms": 96_000,
})


@dataclass(frozen=True)
class PrecisionRow:
    """One Table II row: strategy → accuracies and ALUT fraction."""

    strategy: str
    accuracy_mi_pct: float
    accuracy_rr_pct: float
    alut_pct: float


#: Table II — effect of precision customization.
TABLE2 = (
    PrecisionRow("Uniform Precision ac_fixed<18, 10>", 98.8, 99.3, 115.0),
    PrecisionRow("Uniform Precision ac_fixed<16, 7>", 16.7, 36.5, 22.0),
    PrecisionRow("Layer-based Precision ac_fixed<16, x>", 99.1, 99.9, 31.0),
)

#: Table III — full-system resource row (Quartus fit).
TABLE3 = MappingProxyType({
    "logic_alms": 223_674,
    "logic_pct": 89,
    "registers": 406_123,
    "pins": 221,
    "pins_pct": 37,
    "block_memory_bits": 25_275_808,
    "memory_pct": 58,
    "ram_blocks": 1_818,
    "ram_pct": 85,
    "dsp_blocks": 273,
    "dsp_pct": 16,
    "plls": 3,
    "plls_pct": 5,
})

#: Fig 5 qualitative facts (§V).
FIG5 = MappingProxyType({
    "eval_frames": 1_000,           # "across 1,000 datasets"
    "close_enough_threshold": 0.20,
    "outlier_margin_mitigation": 0.5,  # "half ... mitigated by one bit"
    "tail_attribution": "task scheduling in the operating system",
})
