"""Bit-accurate emulation of Intel ``ac_fixed`` arithmetic on numpy arrays.

The paper quantizes the U-Net with Intel AC fixed-point datatypes
(``ac_fixed<W, I>``: *W* total bits of which *I* are integer bits including
the sign).  hls4ml emits those types into the generated C++ and the Intel
HLS compiler simulates them bit-accurately; this package plays the same
role in pure numpy:

* :class:`FixedPointFormat` — the ``ac_fixed<W, I, signed>`` type with a
  rounding mode (:class:`Rounding`) and overflow mode (:class:`Overflow`).
* :func:`quantize` / :func:`to_raw` / :func:`from_raw` — vectorised
  conversion between float arrays and fixed-point values (represented
  either as floats exactly on the fixed-point grid, or as raw int64
  bit patterns).
* :class:`FixedArray` — an array wrapper carrying its format, with
  full-precision ``+``/``*`` result-type widening rules matching AC types.

Everything operates on whole arrays (scaled int64) — no Python-level
per-element loops — per the repository's HPC ground rules.
"""

from repro.fixed.format import FixedPointFormat, Overflow, Rounding
from repro.fixed.quantize import (
    from_raw,
    quantization_error,
    quantize,
    quantize_,
    to_raw,
)
from repro.fixed.array import FixedArray

__all__ = [
    "FixedPointFormat",
    "Rounding",
    "Overflow",
    "quantize",
    "quantize_",
    "to_raw",
    "from_raw",
    "quantization_error",
    "FixedArray",
]
