"""A fixed-point array type with AC-style result widening.

:class:`FixedArray` bundles raw int64 data with its
:class:`~repro.fixed.format.FixedPointFormat` and implements ``+``/``-``/
``*`` with the AC datatype result-type rules, i.e. the result format is
wide enough that the operation itself is exact:

* addition:        ``I' = max(I1, I2) + 1``, ``F' = max(F1, F2)``
* multiplication:  ``I' = I1 + I2``,        ``F' = F1 + F2``

This mirrors what the HLS compiler instantiates in hardware before the
final assignment narrows the result to the layer's declared output type.
The narrowing step is :meth:`FixedArray.cast`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fixed.format import FixedPointFormat
from repro.fixed.quantize import from_raw, to_raw

__all__ = ["FixedArray"]


def _add_format(a: FixedPointFormat, b: FixedPointFormat) -> FixedPointFormat:
    signed = a.signed or b.signed
    integer = max(a.integer, b.integer) + 1
    frac = max(a.fractional, b.fractional)
    return FixedPointFormat(
        width=integer + frac, integer=integer, signed=signed,
        rounding=a.rounding, overflow=a.overflow,
    )


def _mul_format(a: FixedPointFormat, b: FixedPointFormat) -> FixedPointFormat:
    signed = a.signed or b.signed
    integer = a.integer + b.integer
    frac = a.fractional + b.fractional
    return FixedPointFormat(
        width=integer + frac, integer=integer, signed=signed,
        rounding=a.rounding, overflow=a.overflow,
    )


class FixedArray:
    """An ndarray of fixed-point numbers sharing one format.

    Construct from floats with :meth:`from_float` (quantizing) or wrap raw
    int64 data directly.  Arithmetic between two ``FixedArray`` operands is
    exact (the result format widens); use :meth:`cast` to narrow back to a
    storage format, which is where rounding/overflow happen — exactly the
    dataflow of the generated HLS kernels.
    """

    __slots__ = ("raw", "format")

    def __init__(self, raw: np.ndarray, fmt: FixedPointFormat):
        raw = np.asarray(raw)
        if raw.dtype != np.int64:
            raise TypeError(f"raw must be int64, got {raw.dtype}")
        self.raw = raw
        self.format = fmt

    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, values: np.ndarray, fmt: FixedPointFormat) -> "FixedArray":
        """Quantize float *values* into *fmt* and wrap the raw result."""
        return cls(to_raw(values, fmt), fmt)

    def to_float(self) -> np.ndarray:
        """The represented real values, as float64."""
        return from_raw(self.raw, self.format)

    def cast(self, fmt: FixedPointFormat) -> "FixedArray":
        """Narrow (or widen) to *fmt*, applying its rounding/overflow."""
        if fmt == self.format:
            return self
        shift = fmt.fractional - self.format.fractional
        if shift >= 0 and fmt.width >= self.format.width + shift:
            # Pure widening: exact, no rounding needed.
            return FixedArray(self.raw << shift if shift else self.raw.copy(), fmt)
        return FixedArray.from_float(self.to_float(), fmt)

    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.raw.shape

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, idx) -> "FixedArray":
        return FixedArray(np.atleast_1d(self.raw[idx]), self.format)

    # ------------------------------------------------------------------
    def _coerce(self, other: Union["FixedArray", float, int]) -> "FixedArray":
        if isinstance(other, FixedArray):
            return other
        return FixedArray.from_float(np.asarray(other, dtype=np.float64), self.format)

    def __add__(self, other):
        other = self._coerce(other)
        fmt = _add_format(self.format, other.format)
        a = self.raw.astype(np.int64) << (fmt.fractional - self.format.fractional)
        b = other.raw.astype(np.int64) << (fmt.fractional - other.format.fractional)
        return FixedArray(a + b, fmt)

    def __radd__(self, other):
        return self.__add__(other)

    def __neg__(self):
        fmt = _add_format(self.format, self.format)
        shift = fmt.fractional - self.format.fractional
        return FixedArray(-(self.raw << shift), fmt)

    def __sub__(self, other):
        other = self._coerce(other)
        fmt = _add_format(self.format, other.format)
        a = self.raw.astype(np.int64) << (fmt.fractional - self.format.fractional)
        b = other.raw.astype(np.int64) << (fmt.fractional - other.format.fractional)
        return FixedArray(a - b, fmt)

    def __mul__(self, other):
        other = self._coerce(other)
        fmt = _mul_format(self.format, other.format)
        if fmt.width > 62:
            # Exact product would overflow int64; fall back to float math
            # and quantize into the widest format we can represent.
            fmt = fmt.with_(width=62, integer=min(fmt.integer, 40))
            return FixedArray.from_float(self.to_float() * other.to_float(), fmt)
        return FixedArray(self.raw * other.raw, fmt)

    def __rmul__(self, other):
        return self.__mul__(other)

    # ------------------------------------------------------------------
    def sum(self, axis=None) -> "FixedArray":
        """Exact sum: widens the integer part by ``ceil(log2(n))`` bits."""
        n = self.raw.size if axis is None else self.raw.shape[axis]
        extra = max(1, int(np.ceil(np.log2(max(n, 2)))))
        fmt = self.format.with_(
            width=min(62, self.format.width + extra),
            integer=self.format.integer + extra,
        )
        return FixedArray(np.sum(self.raw, axis=axis), fmt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FixedArray({self.to_float()!r}, {self.format.spec()})"
