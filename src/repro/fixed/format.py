"""Fixed-point format descriptor mirroring Intel ``ac_fixed`` semantics.

``ac_fixed<W, I, S>`` has *W* total bits and *I* integer bits; for signed
types the sign bit is counted inside *I*.  The representable range is

* signed:   ``[-2**(I-1),  2**(I-1) - 2**-(W-I)]``
* unsigned: ``[0,          2**I     - 2**-(W-I)]``

with a quantum (least significant bit) of ``2**-(W-I)``.  *I* may exceed
*W* (coarse grids) or be negative (pure sub-unity fractions) exactly as in
the AC datatype library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Rounding(enum.Enum):
    """Quantization (rounding) behaviour for the discarded LSBs.

    Mirrors the AC type quantization modes used by hls4ml/Intel HLS:

    * ``TRN`` — truncate toward negative infinity (the silicon default;
      drops the low bits of the two's-complement pattern).
    * ``RND`` — round to nearest, ties toward plus infinity (``AC_RND``).
    * ``RND_CONV`` — round to nearest, ties to even (convergent rounding,
      hls4ml's recommended mode for accumulation chains).
    * ``RND_ZERO`` — round to nearest, ties toward zero.
    """

    TRN = "TRN"
    RND = "RND"
    RND_CONV = "RND_CONV"
    RND_ZERO = "RND_ZERO"


class Overflow(enum.Enum):
    """Overflow behaviour when a value exceeds the representable range.

    * ``WRAP`` — two's-complement wraparound (the silicon default; this is
      what makes under-provisioned integer bits catastrophic, cf. the
      paper's ``ac_fixed<16,7>`` row in Table II).
    * ``SAT`` — saturate to the range limits (``AC_SAT``).
    * ``SAT_SYM`` — symmetric saturation: the negative limit is clamped to
      ``-max`` so the range is symmetric around zero.
    """

    WRAP = "WRAP"
    SAT = "SAT"
    SAT_SYM = "SAT_SYM"


@dataclass(frozen=True)
class FixedPointFormat:
    """An ``ac_fixed<width, integer, signed>`` format.

    Parameters
    ----------
    width:
        Total number of bits *W* (must be >= 1).
    integer:
        Integer bits *I*, sign bit included for signed formats.  May be
        negative or exceed ``width``, as in the AC library.
    signed:
        Whether the format is two's-complement signed (paper uses signed
        formats throughout).
    rounding, overflow:
        Behaviour of :func:`repro.fixed.quantize.quantize` for this format.
    """

    width: int
    integer: int
    signed: bool = True
    rounding: Rounding = field(default=Rounding.RND)
    overflow: Overflow = field(default=Overflow.SAT)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.width > 62:
            # raw values live in int64; one bit of headroom is kept for
            # rounding arithmetic.
            raise ValueError(f"width must be <= 62, got {self.width}")
        if self.signed and self.width < 1:
            raise ValueError("signed formats need at least 1 bit")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def fractional(self) -> int:
        """Number of fractional bits ``F = W - I`` (may be negative)."""
        return self.width - self.integer

    @property
    def lsb(self) -> float:
        """The quantum: value of one least-significant bit, ``2**-F``."""
        return 2.0 ** (-self.fractional)

    @property
    def raw_min(self) -> int:
        """Smallest raw (scaled-integer) value."""
        if not self.signed:
            return 0
        if self.overflow is Overflow.SAT_SYM:
            return -(2 ** (self.width - 1) - 1)
        return -(2 ** (self.width - 1))

    @property
    def raw_max(self) -> int:
        """Largest raw (scaled-integer) value."""
        if self.signed:
            return 2 ** (self.width - 1) - 1
        return 2**self.width - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.lsb

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.lsb

    @property
    def range(self) -> float:
        """Width of the representable interval."""
        return self.max_value - self.min_value

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_(self, **changes) -> "FixedPointFormat":
        """Return a copy with the given fields replaced."""
        kwargs = {
            "width": self.width,
            "integer": self.integer,
            "signed": self.signed,
            "rounding": self.rounding,
            "overflow": self.overflow,
        }
        kwargs.update(changes)
        return FixedPointFormat(**kwargs)

    @classmethod
    def for_range(
        cls,
        max_abs: float,
        width: int,
        signed: bool = True,
        margin_bits: int = 0,
        **kwargs,
    ) -> "FixedPointFormat":
        """Choose integer bits so values up to ``max_abs`` fit without overflow.

        This is the paper's layer-based precision rule: profile the maximum
        absolute value a layer produces and allocate
        ``I = ceil(log2(max_abs)) + 1`` integer bits (sign included), plus
        any safety ``margin_bits``.  See Section IV-D.
        """
        if max_abs < 0:
            raise ValueError(f"max_abs must be >= 0, got {max_abs}")
        import math

        if max_abs == 0:
            magnitude_bits = 0
        else:
            magnitude_bits = max(0, math.ceil(math.log2(max_abs + 1e-300)))
            # A value exactly on a power of two still needs the next bit
            # (e.g. max_abs = 4.0 → magnitude 3 bits would top out at 3.999…,
            # ceil(log2(4)) == 2, so bump by one).
            if 2.0**magnitude_bits <= max_abs:
                magnitude_bits += 1
        integer = magnitude_bits + (1 if signed else 0) + margin_bits
        return cls(width=width, integer=integer, signed=signed, **kwargs)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def spec(self) -> str:
        """The C++-style spelling, e.g. ``ac_fixed<16, 7, true>``."""
        return f"ac_fixed<{self.width}, {self.integer}, {'true' if self.signed else 'false'}>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.spec()
