"""Vectorised float ↔ fixed-point conversion.

The central operation is :func:`quantize`, which maps a float array onto
the fixed-point grid of a :class:`~repro.fixed.format.FixedPointFormat`
using its rounding and overflow modes and returns floats that are exactly
representable in that format.  :func:`to_raw`/:func:`from_raw` expose the
underlying scaled-integer (bit-pattern) view used by the SoC simulator's
memory buffers.

All operations are whole-array numpy; raw values are ``int64``.
"""

from __future__ import annotations

import numpy as np

from repro.fixed.format import FixedPointFormat, Overflow, Rounding

__all__ = ["quantize", "to_raw", "from_raw", "quantization_error"]


def _round_raw(scaled: np.ndarray, mode: Rounding) -> np.ndarray:
    """Round real-valued *scaled* (value / lsb) to integers per *mode*."""
    if mode is Rounding.TRN:
        return np.floor(scaled)
    if mode is Rounding.RND:
        # Round half toward +inf: floor(x + 0.5).
        return np.floor(scaled + 0.5)
    if mode is Rounding.RND_CONV:
        # numpy's rint is round-half-to-even (convergent).
        return np.rint(scaled)
    if mode is Rounding.RND_ZERO:
        # Round half toward zero.
        return np.where(scaled >= 0, np.ceil(scaled - 0.5), np.floor(scaled + 0.5))
    raise ValueError(f"unknown rounding mode: {mode!r}")


def _overflow_raw(raw: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Apply the format's overflow behaviour to integer raw values."""
    lo, hi = fmt.raw_min, fmt.raw_max
    if fmt.overflow in (Overflow.SAT, Overflow.SAT_SYM):
        return np.clip(raw, lo, hi)
    if fmt.overflow is Overflow.WRAP:
        span = 2**fmt.width
        wrapped = np.mod(raw - lo, span) + lo
        return wrapped
    raise ValueError(f"unknown overflow mode: {fmt.overflow!r}")


def to_raw(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantize float *values* to the raw scaled-integer representation.

    The result is an ``int64`` array holding ``round(value / lsb)`` after
    rounding and overflow handling; multiplying by ``fmt.lsb`` recovers the
    representable float (see :func:`from_raw`).

    Non-finite inputs are rejected: silicon has no NaN, and letting one
    through would corrupt the wraparound arithmetic silently.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise ValueError("cannot quantize non-finite values")
    scaled = arr / fmt.lsb
    # Guard against float → int64 overflow before the cast: values this far
    # outside the grid saturate (SAT) or are wrapped via fmod (WRAP).
    limit = float(2**62)
    if fmt.overflow is Overflow.WRAP:
        span = float(2**fmt.width)
        scaled = np.where(np.abs(scaled) >= limit, np.fmod(scaled, span), scaled)
    else:
        scaled = np.clip(scaled, -limit, limit)
    raw = _round_raw(scaled, fmt.rounding).astype(np.int64)
    return _overflow_raw(raw, fmt)


def from_raw(raw: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convert raw scaled-integer values back to floats (``raw * lsb``)."""
    return np.asarray(raw, dtype=np.float64) * fmt.lsb


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Project float *values* onto *fmt*'s grid, returning floats.

    Equivalent to assigning a ``double`` to an ``ac_fixed<W, I>`` variable
    in the generated HLS C++ and reading it back.
    """
    return from_raw(to_raw(values, fmt), fmt)


def quantization_error(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Per-element error introduced by quantizing *values* into *fmt*."""
    arr = np.asarray(values, dtype=np.float64)
    return quantize(arr, fmt) - arr
