"""Vectorised float ↔ fixed-point conversion.

The central operation is :func:`quantize`, which maps a float array onto
the fixed-point grid of a :class:`~repro.fixed.format.FixedPointFormat`
using its rounding and overflow modes and returns floats that are exactly
representable in that format.  :func:`to_raw`/:func:`from_raw` expose the
underlying scaled-integer (bit-pattern) view used by the SoC simulator's
memory buffers.

All operations are whole-array numpy; raw values are ``int64``.  The
round/saturate pipeline is the hottest loop in the C-simulation twin
(every kernel casts its accumulator and its result stream), so it is
written single-pass: the scale, round and saturate stages all mutate one
scratch buffer instead of allocating a temporary each.  :func:`quantize_`
is the in-place variant used by the kernels on accumulators they own.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fixed.format import FixedPointFormat, Overflow, Rounding

__all__ = ["quantize", "quantize_", "to_raw", "from_raw",
           "quantization_error"]

#: Magnitude guard before the float → int64 cast (one bit of headroom).
_INT64_LIMIT = float(2**62)

#: Largest integer magnitude exactly representable in float64.  Raw
#: bounds inside ±2**53 are exact, so clipping the rounded (integral)
#: floats against them matches the int64 clip bit for bit.
_FLOAT_EXACT_INT = 2**53


def _round_inplace(scaled: np.ndarray, mode: Rounding) -> None:
    """Round real-valued *scaled* (value / lsb) to integral floats, in place.

    Bit-identical to the naive expressions (``floor(x + 0.5)`` etc.): each
    mode performs the same float64 operations, only without intermediate
    allocations.
    """
    if mode is Rounding.TRN:
        np.floor(scaled, out=scaled)
    elif mode is Rounding.RND:
        # Round half toward +inf: floor(x + 0.5).
        scaled += 0.5
        np.floor(scaled, out=scaled)
    elif mode is Rounding.RND_CONV:
        # numpy's rint is round-half-to-even (convergent).
        np.rint(scaled, out=scaled)
    elif mode is Rounding.RND_ZERO:
        # Round half toward zero: for x >= 0 this is ceil(x - 0.5) and
        # floor(x + 0.5) == -ceil(-x - 0.5) for x < 0, so operate on the
        # magnitude and restore the sign (round-to-nearest is
        # sign-symmetric, so the results match the two-branch form).
        neg = np.signbit(scaled)
        np.fabs(scaled, out=scaled)
        scaled -= 0.5
        np.ceil(scaled, out=scaled)
        np.negative(scaled, out=scaled, where=neg)
    else:
        raise ValueError(f"unknown rounding mode: {mode!r}")


def _overflow_inplace(raw: np.ndarray, fmt: FixedPointFormat) -> None:
    """Apply the format's overflow behaviour to integer raw values, in place."""
    lo, hi = fmt.raw_min, fmt.raw_max
    if fmt.overflow in (Overflow.SAT, Overflow.SAT_SYM):
        np.clip(raw, lo, hi, out=raw)
    elif fmt.overflow is Overflow.WRAP:
        span = 2**fmt.width
        raw -= lo
        np.mod(raw, span, out=raw)
        raw += lo
    else:
        raise ValueError(f"unknown overflow mode: {fmt.overflow!r}")


def _scale_guard_round_inplace(scaled: np.ndarray,
                               fmt: FixedPointFormat) -> None:
    """Stages shared by every conversion: pre-cast guard + rounding.

    *scaled* already holds ``value / lsb`` and is mutated in place.
    Values too far outside the grid to survive the int64 cast saturate
    (SAT) or are wrapped via fmod (WRAP), exactly as hardware with the
    matching overflow mode would treat them.
    """
    if fmt.overflow is Overflow.WRAP:
        # fmod is only needed for astronomically scaled values; skip the
        # masking entirely on the (overwhelmingly common) in-range path.
        span = float(2**fmt.width)
        big = np.abs(scaled) >= _INT64_LIMIT
        if big.any():
            np.fmod(scaled, span, out=scaled, where=big)
    else:
        np.clip(scaled, -_INT64_LIMIT, _INT64_LIMIT, out=scaled)
    _round_inplace(scaled, fmt.rounding)


def to_raw(values: np.ndarray, fmt: FixedPointFormat,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Quantize float *values* to the raw scaled-integer representation.

    The result is an ``int64`` array holding ``round(value / lsb)`` after
    rounding and overflow handling; multiplying by ``fmt.lsb`` recovers the
    representable float (see :func:`from_raw`).  Pass a preallocated
    ``int64`` *out* array to avoid the result allocation.

    Non-finite inputs are rejected: silicon has no NaN, and letting one
    through would corrupt the wraparound arithmetic silently.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise ValueError("cannot quantize non-finite values")
    # asarray keeps 0-d results as ndarrays so the in-place stages work
    # for scalar inputs too.
    scaled = np.asarray(np.divide(arr, fmt.lsb))
    _scale_guard_round_inplace(scaled, fmt)
    if out is None:
        raw = scaled.astype(np.int64)
    else:
        if out.shape != scaled.shape or out.dtype != np.int64:
            raise ValueError(
                f"out must be int64 with shape {scaled.shape}, "
                f"got {out.dtype} {out.shape}"
            )
        np.copyto(out, scaled, casting="unsafe")
        raw = out
    _overflow_inplace(raw, fmt)
    return raw


def from_raw(raw: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convert raw scaled-integer values back to floats (``raw * lsb``)."""
    return np.asarray(raw, dtype=np.float64) * fmt.lsb


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Project float *values* onto *fmt*'s grid, returning floats.

    Equivalent to assigning a ``double`` to an ``ac_fixed<W, I>`` variable
    in the generated HLS C++ and reading it back.
    """
    # np.array always copies, so quantize_ never mutates the caller's data.
    return quantize_(np.array(values, dtype=np.float64), fmt)


def quantize_(values: np.ndarray, fmt: FixedPointFormat,
              raw_out: Optional[np.ndarray] = None) -> np.ndarray:
    """In-place :func:`quantize`: mutates and returns *values*.

    *values* must be a writeable ``float64`` ndarray the caller owns —
    the kernels use this on freshly-computed accumulators so the cast
    onto the result grid allocates a single int64 scratch array instead
    of a full float temporary per stage.

    ``raw_out`` optionally supplies that int64 scratch (same shape as
    *values*): the compiled executor reuses one persistent buffer per
    step so the steady-state path performs no allocation at all.  It is
    ignored on the float-clip fast path, which needs no integer detour.
    """
    if not isinstance(values, np.ndarray) or values.dtype != np.float64:
        raise TypeError("quantize_ needs a float64 ndarray "
                        f"(got {type(values).__name__})")
    if not np.isfinite(values).all():
        raise ValueError("cannot quantize non-finite values")
    np.divide(values, fmt.lsb, out=values)
    if (fmt.overflow is not Overflow.WRAP
            and fmt.raw_max <= _FLOAT_EXACT_INT
            and -fmt.raw_min <= _FLOAT_EXACT_INT):
        # Saturating formats whose raw bounds fit the float64 mantissa
        # never need the int64 detour: the rounded values are integral
        # floats and the bounds are exactly representable, so a float
        # clip saturates bit-identically (and out-of-cast-range inputs
        # hit the same bound the int64 guard would send them to).
        _round_inplace(values, fmt.rounding)
        np.clip(values, float(fmt.raw_min), float(fmt.raw_max), out=values)
        np.multiply(values, fmt.lsb, out=values)
        return values
    _scale_guard_round_inplace(values, fmt)
    if raw_out is None:
        raw = values.astype(np.int64)
    else:
        if raw_out.shape != values.shape or raw_out.dtype != np.int64:
            raise ValueError(
                f"raw_out must be int64 with shape {values.shape}, "
                f"got {raw_out.dtype} {raw_out.shape}"
            )
        # copyto(unsafe) is the same C-level float→int64 cast astype
        # performs (pinned by the golden-vector tests).
        np.copyto(raw_out, values, casting="unsafe")
        raw = raw_out
    _overflow_inplace(raw, fmt)
    np.multiply(raw, fmt.lsb, out=values)
    return values


def quantization_error(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Per-element error introduced by quantizing *values* into *fmt*."""
    arr = np.asarray(values, dtype=np.float64)
    return quantize(arr, fmt) - arr
