"""Structured spans: the tracing half of the observability layer.

A :class:`Tracer` records **nested spans** — named intervals with both a
wall-clock duration (what the host actually spent) and an optional
simulated-clock interval (what the modelled hardware spent, the numbers
the paper's latency tables quote).  The control loop opens one ``frame``
span per digitizer tick; the board, the IP executors and the publish
path attach child spans under it.

Two recording styles:

* ``with tracer.span("frame", frame=fi) as sp:`` — an *open* span
  wrapping live code; children recorded inside nest under it, and the
  handle is the mutable :class:`Span` itself (set ``sim_t0``/``sim_t1``
  or extra ``attrs`` before the block exits).
* ``tracer.record("ip_compute", sim_t0=a, sim_t1=b)`` — a
  *retroactive* span for an interval already measured on the simulated
  clock (the event-driven board knows its timestamps exactly); it
  attaches to the innermost open span and inherits its frame index.

Design rules (see docs/observability.md):

* **Zero-cost when off** — components hold ``tracer = None`` by default
  and guard every call site with a single ``is not None`` test; no
  tracer object exists unless observability was requested.
* **Pure observer** — a tracer never touches data, RNG streams or the
  simulated clock, so enabling it is bit-identical by construction (and
  asserted by tests/test_obs.py on every executor path).
* **Bounded** — the span store is a ring (``max_spans``); unbounded
  growth on a long-lived node is not an option.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One named interval.

    ``wall_t0``/``wall_t1`` are host ``perf_counter`` seconds;
    ``sim_t0``/``sim_t1`` are simulated-clock seconds when the interval
    exists on the modelled hardware (retroactive spans recorded from the
    event-driven simulation).  ``frame`` ties the span to a digitizer
    frame index; ``parent_id`` links the tree.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    frame: Optional[int]
    wall_t0: float
    wall_t1: float
    sim_t0: Optional[float] = None
    sim_t1: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> float:
        """Host seconds spent inside the span."""
        return self.wall_t1 - self.wall_t0

    @property
    def sim_duration_s(self) -> Optional[float]:
        """Simulated seconds covered (None for wall-only spans)."""
        if self.sim_t0 is None or self.sim_t1 is None:
            return None
        return self.sim_t1 - self.sim_t0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the flight-recorder / exporter payload)."""
        d: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "frame": self.frame,
            "wall_us": round(self.wall_duration_s * 1e6, 3),
        }
        sim = self.sim_duration_s
        if sim is not None:
            d["sim_t0_s"] = self.sim_t0
            d["sim_us"] = round(sim * 1e6, 3)
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d


class _OpenSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Bounded recorder of nested :class:`Span` trees.

    Parameters
    ----------
    max_spans:
        Ring capacity of the finished-span store; the oldest spans are
        evicted first.  ``None`` keeps everything (offline analysis of a
        short run).
    """

    def __init__(self, max_spans: Optional[int] = 65536):
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._stack: List[Span] = []
        self._next_id = 0
        self.dropped = 0  # spans evicted from the ring

    # ------------------------------------------------------------------
    def _new(self, name: str, frame: Optional[int], wall_t0: float,
             wall_t1: float, sim_t0: Optional[float],
             sim_t1: Optional[float], attrs: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        if frame is None and parent is not None:
            frame = parent.frame
        span = Span(name=name, span_id=self._next_id,
                    parent_id=parent.span_id if parent is not None else None,
                    frame=frame, wall_t0=wall_t0, wall_t1=wall_t1,
                    sim_t0=sim_t0, sim_t1=sim_t1, attrs=attrs)
        self._next_id += 1
        return span

    def _append(self, span: Span) -> None:
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order (open stack: "
                f"{[s.name for s in self._stack]})"
            )
        self._stack.pop()
        span.wall_t1 = time.perf_counter()
        self._append(span)

    # ------------------------------------------------------------------
    def span(self, name: str, *, frame: Optional[int] = None,
             sim_t0: Optional[float] = None, **attrs: Any) -> _OpenSpan:
        """Open a live span; use as ``with tracer.span(...) as sp:``.

        The span is appended to the store when the block exits (children
        therefore precede their parent in completion order).
        """
        now = time.perf_counter()
        span = self._new(name, frame, now, now, sim_t0, None, attrs)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def record(self, name: str, *, frame: Optional[int] = None,
               sim_t0: Optional[float] = None,
               sim_t1: Optional[float] = None,
               wall_t0: Optional[float] = None,
               wall_t1: Optional[float] = None, **attrs: Any) -> Span:
        """Record a completed interval retroactively.

        Attaches to the innermost open span (inheriting its frame index
        unless *frame* is given).  Wall timestamps default to "now" —
        a zero-duration marker for intervals that only exist on the
        simulated clock.
        """
        now = time.perf_counter()
        w0 = now if wall_t0 is None else wall_t0
        w1 = now if wall_t1 is None else wall_t1
        span = self._new(name, frame, w0, w1, sim_t0, sim_t1, attrs)
        self._append(span)
        return span

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order (optionally filtered)."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def frame_spans(self, frame: int) -> List[Span]:
        """All spans of one frame, in completion order.

        Frames complete contiguously, so this scans backwards from the
        newest span and stops at the first older frame — O(spans of the
        frame), not O(ring).
        """
        out: List[Span] = []
        seen = False
        for s in reversed(self._spans):
            if s.frame == frame:
                seen = True
                out.append(s)
            elif seen and s.frame is not None and s.frame < frame:
                break
        out.reverse()
        return out

    def children(self, span_id: int) -> List[Span]:
        """Direct children of a span."""
        return [s for s in self._spans if s.parent_id == span_id]

    def frame_tree(self, frame: int) -> Dict[str, Any]:
        """The frame's span tree as nested dicts (root = ``frame`` span)."""
        spans = self.frame_spans(frame)
        by_parent: Dict[Optional[int], List[Span]] = {}
        for s in spans:
            by_parent.setdefault(s.parent_id, []).append(s)

        def build(span: Span) -> Dict[str, Any]:
            node = span.to_dict()
            kids = by_parent.get(span.span_id, [])
            if kids:
                node["children"] = [build(k) for k in kids]
            return node

        roots = [s for s in spans if s.parent_id is None
                 or all(p.span_id != s.parent_id for p in spans)]
        if len(roots) == 1:
            return build(roots[0])
        return {"name": f"frame:{frame}", "children": [build(r) for r in roots]}

    def names(self) -> List[str]:
        """Distinct span names recorded so far (sorted)."""
        return sorted({s.name for s in self._spans})

    def __len__(self) -> int:
        return len(self._spans)

    def open_depth(self) -> int:
        """Currently-open nesting depth (0 when idle)."""
        return len(self._stack)

    def reset(self) -> None:
        """Drop every finished span (open spans stay on the stack)."""
        self._spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def durations_s(self, name: str, clock: str = "sim") -> List[float]:
        """Durations of every span called *name* on one clock.

        ``clock="sim"`` skips wall-only spans; ``clock="wall"`` returns
        host durations for all of them.
        """
        if clock not in ("sim", "wall"):
            raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
        out = []
        for s in self._spans:
            if s.name != name:
                continue
            if clock == "wall":
                out.append(s.wall_duration_s)
            else:
                d = s.sim_duration_s
                if d is not None:
                    out.append(d)
        return out
