"""repro.obs — the unified observability layer.

One subsystem replaces the four ad-hoc telemetry surfaces that grew
across PRs 1–3 (``PerformanceCounters`` events, ``RunStats`` fields,
``FrameRecord`` scraping, ``tools/bench_report.py`` timings):

* :class:`~repro.obs.spans.Tracer` — nested spans over the whole
  inference path (hub readout → DMA/bridge transfers → IP compute →
  decision ladder → publish), each with wall-clock and simulated-clock
  timestamps,
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket latency histograms (p50/p90/p99/max per stage, deadline
  misses and fault tallies folded in from :mod:`repro.soc.faults`),
* :class:`~repro.obs.recorder.FlightRecorder` — a bounded ring of the
  last N frames' spans + health state, frozen into JSONL post-mortems
  on watchdog trips and output-guard rejections.

The three are assembled by :class:`Observability` and switched on
through :class:`ObsConfig` (the keyword-only config dataclass the
``repro.core.api`` facade takes).  The contract, enforced by
tests/test_obs.py:

* **zero-cost when off** — no tracer object exists by default; every
  instrumented call site is a single ``is not None`` guard,
* **bit-identical when on** — enabling observability changes no output
  word on any executor path (naive, batched, compiled level 1/2,
  fault-injected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.export import OBS_FORMAT, obs_snapshot, write_obs_json
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, Tracer

__all__ = [
    "ObsConfig",
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "DEFAULT_LATENCY_BUCKETS_S",
    "OBS_FORMAT",
    "obs_snapshot",
    "write_obs_json",
]


@dataclass(frozen=True, kw_only=True)
class ObsConfig:
    """Keyword-only observability configuration (see ``repro.core.api``).

    Parameters
    ----------
    enabled:
        Master switch; ``ObsConfig(enabled=False)`` (or passing no
        config at all) keeps the runtime on the zero-cost no-op path.
    flight_frames:
        Ring capacity of the flight recorder (last N frames).
    max_spans:
        Span-store ring capacity (``None`` keeps everything).
    trace_kernels:
        Additionally record one span per HLS kernel / compiled step per
        forward pass (wall clock).  Detailed but hot — leave off in
        deployment-style loops.
    dump_path:
        When set, every post-mortem (watchdog trip, output-guard
        rejection) is appended to this JSONL file as it happens.
    """

    enabled: bool = True
    flight_frames: int = 256
    max_spans: Optional[int] = 65536
    trace_kernels: bool = False
    dump_path: Optional[str] = None

    def __post_init__(self):
        if self.flight_frames < 1:
            raise ValueError(
                f"flight_frames must be >= 1, got {self.flight_frames}")
        if self.max_spans is not None and self.max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {self.max_spans}")


@dataclass
class Observability:
    """The assembled tracer + metrics + flight recorder bundle.

    Built from an :class:`ObsConfig` via :meth:`from_config`; attached
    to a :class:`~repro.soc.runtime.CentralNodeRuntime` (which threads
    the tracer into its boards and, when ``trace_kernels`` is set, into
    their HLS models).
    """

    tracer: Tracer
    metrics: MetricsRegistry
    recorder: FlightRecorder
    config: ObsConfig

    @classmethod
    def from_config(cls, config: Optional[ObsConfig]) -> Optional["Observability"]:
        """Build the bundle, or ``None`` when observability is off."""
        if config is None or not config.enabled:
            return None
        return cls(
            tracer=Tracer(max_spans=config.max_spans),
            metrics=MetricsRegistry(),
            recorder=FlightRecorder(capacity=config.flight_frames),
            config=config,
        )

    # ------------------------------------------------------------------
    def snapshot(self, runtime=None) -> dict:
        """Machine-readable snapshot (see :mod:`repro.obs.export`)."""
        return obs_snapshot(self, runtime)

    def export(self, path, runtime=None):
        """Write :meth:`snapshot` to a JSON file; returns the path."""
        return write_obs_json(path, self, runtime)
