"""Turning recorded spans into paper-style latency statistics.

The paper's headline table quotes per-stage and end-to-end latencies
(1.74 ms average U-Net system latency, 0.31 ms MLP, 575 fps).  These
helpers aggregate a :class:`~repro.obs.spans.Tracer`'s recorded spans —
the simulated-clock intervals the board emitted while the loop ran —
into exactly those numbers, so ``repro-experiments obs-report`` can
print the table from a live run instead of recomputing closed forms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.spans import Tracer

__all__ = [
    "BOARD_STAGES",
    "stage_summary",
    "per_frame_stage_sums",
    "node_latencies_s",
]

#: The board's step 1–8 stage spans, in pipeline order (names match the
#: :class:`~repro.soc.board.FrameTiming` fields).
BOARD_STAGES = ("preprocess", "write_input", "trigger", "ip_compute",
                "irq", "read_output", "postprocess", "jitter")


def _stats(durations: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(durations, dtype=np.float64)
    if arr.size == 0:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p90_s": 0.0,
                "p99_s": 0.0, "max_s": 0.0}
    return {
        "count": int(arr.size),
        "mean_s": float(arr.mean()),
        "p50_s": float(np.percentile(arr, 50)),
        "p90_s": float(np.percentile(arr, 90)),
        "p99_s": float(np.percentile(arr, 99)),
        "max_s": float(arr.max()),
    }


def stage_summary(tracer: Tracer, names: Optional[Sequence[str]] = None,
                  clock: str = "sim") -> Dict[str, Dict[str, float]]:
    """Per-span-name latency statistics (exact percentiles over the
    recorded spans; unlike the fixed-bucket histograms these hold the
    full per-run sample in hand)."""
    if names is None:
        names = tracer.names()
    return {name: _stats(tracer.durations_s(name, clock=clock))
            for name in names}


def per_frame_stage_sums(tracer: Tracer,
                         stages: Sequence[str] = BOARD_STAGES
                         ) -> Dict[int, float]:
    """Frame index → summed simulated duration of the given stage spans.

    One pass over the span store; frames missing every stage (hung
    before the pipeline started) are absent from the result.
    """
    wanted = frozenset(stages)
    sums: Dict[int, float] = {}
    for s in tracer.spans():
        if s.name in wanted and s.frame is not None:
            d = s.sim_duration_s
            if d is not None:
                sums[s.frame] = sums.get(s.frame, 0.0) + d
    return sums


def node_latencies_s(tracer: Tracer,
                     stages: Sequence[str] = BOARD_STAGES) -> np.ndarray:
    """Per-frame node latency (steps 1–8) reconstructed from the stage
    spans, in frame order — the distribution behind the paper's average
    system latency and fps figures."""
    sums = per_frame_stage_sums(tracer, stages)
    return np.array([sums[f] for f in sorted(sums)])
