"""Counters, gauges and fixed-bucket latency histograms.

The metrics half of the observability layer: a :class:`MetricsRegistry`
holds named

* **counters** — monotonically increasing event tallies (frames by
  status, deadline misses, injected faults folded in from
  :mod:`repro.soc.faults`),
* **gauges** — last-written values (active engine, consecutive-bad
  streak),
* **histograms** — fixed-bucket latency distributions with p50/p90/p99
  and max per stage.

Histograms use *fixed* bucket boundaries (log-spaced over the
microsecond–tens-of-milliseconds range the 3 ms control loop lives in)
so recording is O(log buckets) with constant memory, like the hardware
counters the paper integrates — not a growing sample list.  Percentiles
are therefore *bucketed*: a query returns the upper edge of the bucket
containing the requested rank (the overflow bucket reports the exact
observed max), which is deterministic and pinned by the tests.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]


def _geometric_buckets(lo: float, hi: float, per_decade: int) -> Tuple[float, ...]:
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    return tuple(lo * 10 ** (i * decades / n) for i in range(n + 1))


#: Default latency buckets: 100 ns → 100 ms, 9 per decade.  Covers every
#: stage of the pipeline (bridge writes are ~µs, IP compute ~1.6 ms, the
#: watchdog budget 3 ms) with ~29 % bucket granularity.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = _geometric_buckets(1e-7, 1e-1, 9)


class Counter:
    """A named monotone event tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        """Bump by *n* (>= 0); returns the new value."""
        if n < 0:
            raise ValueError(f"counter {self.name!r}: n must be >= 0, got {n}")
        self.value += n
        return self.value


class Gauge:
    """A named last-value metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    ``buckets_s`` are the *upper* edges (ascending); one extra overflow
    bucket catches values above the last edge.
    """

    __slots__ = ("name", "uppers", "bucket_counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str,
                 buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S):
        uppers = tuple(float(b) for b in buckets_s)
        if not uppers or any(b <= a for a, b in zip(uppers, uppers[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.uppers = uppers
        self.bucket_counts = [0] * (len(uppers) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        self.bucket_counts[bisect_left(self.uppers, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min_value:
            self.min_value = v
        if v > self.max_value:
            self.max_value = v

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucketed percentile: the upper edge of the bucket holding the
        rank-``ceil(q/100 * count)`` sample (overflow bucket → exact max).
        Returns 0.0 when empty."""
        if not 0 < q <= 100:
            raise ValueError(f"q must be in (0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q / 100.0 * self.count)
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= rank:
                if i < len(self.uppers):
                    return self.uppers[i]
                return self.max_value
        return self.max_value  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p90 / p99 / max in one dict."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def nonzero_buckets(self) -> List[Tuple[Optional[float], int]]:
        """(upper_edge, count) for populated buckets (None = overflow)."""
        out: List[Tuple[Optional[float], int]] = []
        for i, n in enumerate(self.bucket_counts):
            if n:
                edge = self.uppers[i] if i < len(self.uppers) else None
                out.append((edge, n))
        return out


class MetricsRegistry:
    """Get-or-create store of named counters, gauges and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def inc(self, name: str, n: int = 1) -> int:
        """Bump counter *name* (created on first use)."""
        return self.counter(name).inc(n)

    def count(self, name: str) -> int:
        """Current counter value (0 if never bumped)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def set_count(self, name: str, value: int) -> None:
        """Mirror an externally-maintained tally (e.g. the runtime's
        :class:`~repro.soc.counters.PerformanceCounters` events) into
        this registry; counters stay monotone, so the mirror takes the
        max of the two."""
        c = self.counter(name)
        c.value = max(c.value, int(value))

    # ------------------------------------------------------------------
    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    def histogram(self, name: str,
                  buckets_s: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, buckets_s if buckets_s is not None
                else DEFAULT_LATENCY_BUCKETS_S)
        elif buckets_s is not None:
            # A caller asking for specific boundaries must get exactly
            # those boundaries: silently reusing a histogram with other
            # buckets would hand back wrong-resolution percentiles.
            requested = tuple(float(b) for b in buckets_s)
            if requested != h.uppers:
                raise ValueError(
                    f"histogram {name!r} already exists with buckets "
                    f"{h.uppers}, requested {requested}")
        return h

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name* (default buckets)."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    def names(self) -> Dict[str, List[str]]:
        """Registered metric names by family."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every metric (the exporter payload)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {**h.summary(),
                    "buckets": [[edge, cnt]
                                for edge, cnt in h.nonzero_buckets()]}
                for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
