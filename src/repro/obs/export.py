"""Machine-readable exporters for the observability layer.

One snapshot format, consumed by ``tools/bench_report.py`` and written
by ``repro-experiments obs-report``:

.. code-block:: json

    {
      "meta":     {"format": "repro-obs/1", ...},
      "metrics":  {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "spans":    {"count": N, "dropped": D, "stages": {name: stats}},
      "recorder": {"capacity": ..., "frames_seen": ..., "trips": ...},
      "health":   {... HealthReport fields, when a runtime is given ...}
    }

Everything is plain JSON; histogram stats are the fixed-bucket
summaries, span stats the exact per-name aggregates of the recorded
spans (both clocks).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["obs_snapshot", "write_obs_json", "OBS_FORMAT"]

#: Snapshot format tag (bump on breaking layout changes).
OBS_FORMAT = "repro-obs/1"


def obs_snapshot(obs, runtime=None) -> Dict[str, Any]:
    """Aggregate an :class:`~repro.obs.Observability` bundle (and
    optionally the runtime it instruments) into one JSON-safe dict."""
    from repro.obs.report import stage_summary

    tracer = obs.tracer
    snap: Dict[str, Any] = {
        "meta": {"format": OBS_FORMAT},
        "metrics": obs.metrics.snapshot(),
        "spans": {
            "count": len(tracer),
            "dropped": tracer.dropped,
            "stages_sim": stage_summary(tracer, clock="sim"),
            "stages_wall": stage_summary(tracer, clock="wall"),
        },
        "recorder": {
            "capacity": obs.recorder.capacity,
            "frames_seen": obs.recorder.frames_seen,
            "retained": len(obs.recorder),
            "trips": obs.recorder.trips,
        },
    }
    if runtime is not None:
        health = runtime.health_report()
        d = dataclasses.asdict(health)
        # Tuples of tuples JSON-serialise as nested lists; normalise so a
        # round trip through json compares equal.
        d["transitions"] = [list(t) for t in health.transitions]
        snap["health"] = d
    return snap


def write_obs_json(path: Union[str, Path], obs, runtime=None) -> Path:
    """Write :func:`obs_snapshot` to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(obs_snapshot(obs, runtime), indent=2,
                               sort_keys=True) + "\n", encoding="utf-8")
    return path
