"""Bounded JSONL flight recorder for post-mortem dumps.

A machine-protection node cannot keep every frame forever, but when the
watchdog trips or the output guard rejects a frame, the operator needs
the *recent past*, not just the aggregate counters.  The
:class:`FlightRecorder` keeps the last N per-frame entries (status,
latency breakdown, span tree, fault kinds) in a ring; on a trip it
freezes a copy of the ring — a **post-mortem** — and optionally appends
it to a JSONL dump file.

Entries are plain JSON-safe dicts; the JSONL form is one frame entry
per line, so dumps stream into standard tooling (``jq``, pandas).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Union

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring buffer of per-frame observability entries.

    Parameters
    ----------
    capacity:
        Frames retained in the ring (the "last N frames" window).
    max_postmortems:
        Frozen ring copies kept after trips; older post-mortems are
        dropped first (each one is up to *capacity* entries, so this
        bounds total memory).
    """

    def __init__(self, capacity: int = 256, max_postmortems: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_postmortems < 1:
            raise ValueError(
                f"max_postmortems must be >= 1, got {max_postmortems}")
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.postmortems: Deque[Dict[str, Any]] = deque(maxlen=max_postmortems)
        self.frames_seen = 0
        self.trips = 0

    # ------------------------------------------------------------------
    def append(self, entry: Mapping[str, Any]) -> None:
        """Record one frame entry (a JSON-safe mapping)."""
        self._ring.append(dict(entry))
        self.frames_seen += 1

    def entries(self) -> List[Dict[str, Any]]:
        """Current ring contents, oldest first (copies)."""
        return [dict(e) for e in self._ring]

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    def mark_trip(self, reason: str,
                  frame_index: Optional[int] = None) -> Dict[str, Any]:
        """Freeze the ring into a post-mortem (watchdog trip, output
        guard rejection, ...) and return it.

        The snapshot is an independent copy: frames recorded after the
        trip keep flowing into the live ring without touching it.
        """
        self.trips += 1
        snapshot = {
            "reason": reason,
            "frame_index": frame_index,
            "trip_number": self.trips,
            "entries": self.entries(),
        }
        self.postmortems.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    @staticmethod
    def _jsonl(header: Dict[str, Any],
               entries: List[Dict[str, Any]]) -> str:
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(e, sort_keys=True) for e in entries)
        return "\n".join(lines) + "\n"

    def to_jsonl(self, postmortem: Optional[Mapping[str, Any]] = None) -> str:
        """Serialise a post-mortem (default: the live ring) as JSONL.

        The first line is a header record (``{"record": "header", ...}``)
        carrying the trip metadata; every following line is one frame
        entry.  Both header variants are self-describing: they carry
        ``frames_seen`` (total frames ever recorded, not just retained)
        and ``n_entries`` (how many entry lines follow), so a dump can be
        parsed without knowing which variant produced it.
        """
        if postmortem is None:
            entries = self.entries()
            header = {"record": "header", "reason": "snapshot",
                      "frames_seen": self.frames_seen,
                      "n_entries": len(entries),
                      "capacity": self.capacity}
        else:
            entries = list(postmortem.get("entries", []))
            header = {"record": "header",
                      "reason": postmortem.get("reason"),
                      "frame_index": postmortem.get("frame_index"),
                      "trip_number": postmortem.get("trip_number"),
                      "frames_seen": self.frames_seen,
                      "n_entries": len(entries),
                      "capacity": self.capacity}
        return self._jsonl(header, entries)

    def dump(self, path: Union[str, Path],
             postmortem: Optional[Mapping[str, Any]] = None) -> Path:
        """Append a post-mortem (default: the live ring) to a JSONL file.

        Appending keeps every trip of a run in one file, each introduced
        by its header line.
        """
        path = Path(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(self.to_jsonl(postmortem))
        return path
