#!/usr/bin/env python
"""Quickstart: co-design and deploy the paper's U-Net in one call.

Loads the pre-trained de-blending U-Net, runs the ML/HLS co-design
pipeline (profile → layer-based precision → constraint checks), deploys
the winning design on the simulated Achilles Arria 10 board, verifies it
with the staged flow, and pushes a few live frames through the system.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import codesign_and_deploy
from repro.pretrained import load_reference_bundle


def main() -> None:
    print("loading pre-trained bundle (dataset + U-Net) ...")
    bundle = load_reference_bundle(train_if_missing=True)
    dataset = bundle.dataset

    print("running ML/HLS co-design ...")
    design, deployment = codesign_and_deploy(
        bundle.unet,
        dataset.unet_inputs(dataset.x_train[:300]),
        eval_frames=100,
        verify_frames=6,
    )
    print(f"  chosen design: {design.describe()}")
    print(f"  verification: "
          f"{'ALL PASS' if deployment.verified else 'FAILURES'}")
    for stage in deployment.verification:
        print(f"    {stage}")

    print("\ndeployment summary:")
    lat_ms = deployment.system_latency_s * 1e3
    print(f"  system latency : {lat_ms:.2f} ms (paper: 1.74 ms)")
    print(f"  throughput     : {deployment.throughput_fps:.0f} fps "
          f"(requirement: 320 fps, paper: 575 fps)")
    print(f"  meets contract : {deployment.meets_requirement()}")

    print("\npushing 5 live frames through the board ...")
    frames = dataset.x_eval[:5]
    result = deployment.board.run(frames, seed=1)
    for i, timing in enumerate(result.timings):
        probs = result.outputs[i].reshape(-1, 2)
        print(f"  frame {i}: latency {timing.total * 1e3:.3f} ms, "
              f"mean P(MI)={probs[:, 0].mean():.2f} "
              f"P(RR)={probs[:, 1].mean():.2f}")


if __name__ == "__main__":
    main()
