#!/usr/bin/env python
"""Quickstart: the ``repro.core.api`` facade, end to end.

Loads the pre-trained de-blending U-Net, runs the ML/HLS co-design
pipeline (profile → layer-based precision → constraint checks), deploys
the winning design on the simulated Achilles Arria 10 board, verifies it
with the staged flow, then drives live frames through the hardened
control loop with the observability layer on and reads the latency
figures back out of the recorded spans.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    print("loading pre-trained bundle (dataset + U-Net) ...")
    bundle = repro.load_pretrained()
    dataset = bundle.dataset

    print("running ML/HLS co-design ...")
    design, deployment = repro.codesign_and_deploy(
        bundle.unet,
        dataset.unet_inputs(dataset.x_train[:300]),
        eval_frames=100,
        verify_frames=6,
    )
    print(f"  chosen design: {design.describe()}")
    print(f"  verification: "
          f"{'ALL PASS' if deployment.verified else 'FAILURES'}")
    for stage in deployment.verification:
        print(f"    {stage}")

    print("\ndeployment summary:")
    lat_ms = deployment.system_latency_s * 1e3
    print(f"  system latency : {lat_ms:.2f} ms (paper: 1.74 ms)")
    print(f"  throughput     : {deployment.throughput_fps:.0f} fps "
          f"(requirement: 320 fps, paper: 575 fps)")
    print(f"  meets contract : {deployment.meets_requirement()}")

    print("\ndriving 64 live frames through the hardened control loop "
          "(observability on) ...")
    result = repro.run_control_loop(
        design.hls_model,
        dataset.x_eval[:64],
        config=repro.RuntimeConfig(compile_level=1),
        obs=repro.ObsConfig(flight_frames=64),
    )
    node_ms = result.total_latencies_s * 1e3
    print(f"  frames processed : {result.health.frames_total} "
          f"(status: {result.health.status_counts})")
    print(f"  total latency     : mean {node_ms.mean():.3f} ms, "
          f"p99 {float(np.percentile(node_ms, 99)):.3f} ms")
    snap = result.obs.metrics.snapshot()
    print(f"  deadline misses  : "
          f"{snap['counters'].get('frames.deadline_miss', 0)}")
    tree = result.obs.tracer.frame_tree(0)
    stages = ", ".join(c["name"] for c in tree["children"])
    print(f"  frame 0 span tree: frame -> {stages}")


if __name__ == "__main__":
    main()
