#!/usr/bin/env python
"""End-to-end beam-loss de-blending: the paper's deployed control loop.

Simulates the full operational chain for a stretch of accelerator
running: the two machines (MI/RR) deposit losses, 260 BLMs digitize them
every 3 ms, seven hubs forward the frame over Ethernet, the Arria 10
central node de-blends it with the U-Net IP, and the trip controller
decides which machine (if any) to trip, publishing to ACNET.  Decision
quality is scored against the substrate's ground truth.

Run:  python examples/beamloss_deblending.py
"""

from repro.beamloss import ground_truth_machines, score_decisions
from repro.experiments.common import bundle, converted
from repro.soc import AchillesBoard, CentralNodeRuntime

N_FRAMES = 60


def main() -> None:
    print("setting up the central node (layer-based U-Net design) ...")
    b = bundle()
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    runtime = CentralNodeRuntime(board=AchillesBoard(hls_model))

    frames = b.dataset.x_eval[:N_FRAMES]
    print(f"processing {N_FRAMES} digitizer frames (3 ms period) ...")
    runtime.run(frames, seed=11)

    truth = ground_truth_machines(
        b.dataset.blended_eval.targets[:N_FRAMES],
        machine_names=b.dataset.machine_names,
    )
    score = score_decisions(runtime.decisions(), truth)

    print("\nresults:")
    counts = runtime.controller.trip_counts()
    print(f"  trips: MI={counts['MI']} RR={counts['RR']} "
          f"healthy={counts[None]}")
    print(f"  decision quality: {score.summary()}")
    lat = runtime.total_latencies_s
    print(f"  tick-to-decision latency: mean {lat.mean() * 1e3:.2f} ms, "
          f"max {lat.max() * 1e3:.2f} ms "
          f"(includes hub Ethernet, step 0)")
    print(f"  deadline compliance (3 ms): "
          f"{runtime.deadline_compliance():.1%}")
    print(f"  ACNET messages delivered: {len(runtime.acnet)} "
          f"({len(runtime.acnet.trips())} trips)")


if __name__ == "__main__":
    main()
