#!/usr/bin/env python
"""Deploy *your own* model through the flow.

The paper emphasises that the architecture template is reusable: "The
U-Net IP can be easily replaced by other IP cores as well, leveraging
the general purpose interface wrapper we developed for hls4ml."  This
example builds a small custom network for a 64-monitor toy ring, trains
it briefly, co-designs it, deploys it on the simulated board, and emits
the C++ project hls4ml would hand to the Intel HLS compiler.

Run:  python examples/custom_model_deployment.py
"""

import numpy as np

from repro.beamloss import BLMArray, TunnelGeometry, make_dataset
from repro.beamloss.dataset import Standardizer
from repro.core import codesign_and_deploy
from repro.hls.codegen import emit_project
from repro.nn import (
    Adam,
    BinaryCrossentropy,
    Conv1D,
    Dense,
    Flatten,
    Input,
    MaxPooling1D,
    Model,
    ReLU,
    Sigmoid,
    UpSampling1D,
    fit,
)


def build_custom_model(n_monitors: int = 64) -> Model:
    """A lighter encoder/decoder for a small ring."""
    inp = Input((n_monitors, 1), name="ring_input")
    x = Conv1D(12, 3, seed=1, name="enc_conv")(inp)
    x = ReLU(name="enc_relu")(x)
    skip = x
    x = MaxPooling1D(2, name="pool")(x)
    x = Conv1D(24, 3, seed=2, name="mid_conv")(x)
    x = ReLU(name="mid_relu")(x)
    x = UpSampling1D(2, name="up")(x)
    from repro.nn import Concatenate

    x = Concatenate(name="skip")(x, skip)
    x = Conv1D(12, 3, seed=3, name="dec_conv")(x)
    x = ReLU(name="dec_relu")(x)
    x = Dense(2, seed=4, name="head")(x)
    x = Sigmoid(name="prob")(x)
    out = Flatten(name="flat")(x)
    return Model(inp, out, name="mini_deblender")


def main() -> None:
    n_monitors = 64
    print("synthesizing a 64-monitor toy ring dataset ...")
    geometry = TunnelGeometry(n_monitors=n_monitors, circumference_m=800.0)
    dataset = make_dataset(
        n_train=250, n_val=50, n_eval=80,
        geometry=geometry,
        blm=BLMArray(n_monitors=n_monitors),
        seed=3,
    )

    print("training the custom model (20 quick epochs) ...")
    model = build_custom_model(n_monitors)
    print(f"  {model.count_params():,} parameters")
    history = fit(model, dataset.unet_inputs(dataset.x_train),
                  dataset.y_train, BinaryCrossentropy(), Adam(1e-3),
                  epochs=20, batch_size=25, seed=0)
    print(f"  final training loss: {history.final_loss:.4f}")

    print("co-designing + deploying ...")
    design, deployment = codesign_and_deploy(
        model, dataset.unet_inputs(dataset.x_train), eval_frames=60,
        verify_frames=4,
    )
    print(f"  {design.describe()}")
    print(f"  verification: {'PASS' if deployment.verified else 'FAIL'}")
    print(f"  system latency {deployment.system_latency_s * 1e3:.3f} ms "
          f"→ {deployment.throughput_fps:.0f} fps")

    print("emitting the C++ project ...")
    files = emit_project(design.hls_model, include_weights=False)
    for path in sorted(files):
        print(f"  {path} ({len(files[path]):,} chars)")
    component = files[f"firmware/{design.hls_model.name}.cpp"]
    print("\nfirst lines of the component:")
    for line in component.splitlines()[:12]:
        print("   ", line)


if __name__ == "__main__":
    main()
