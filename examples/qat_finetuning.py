#!/usr/bin/env python
"""Quantization-aware fine-tuning at aggressive widths.

The paper quantizes post-training; this example shows the natural
extension (QKeras-style QAT, implemented in ``repro.nn.qat``): take the
deployed U-Net, squeeze it to 11 total bits where plain PTQ degrades,
fine-tune for two epochs with quantized-weight forwards, and compare.

Run:  python examples/qat_finetuning.py
"""

from repro.experiments.common import bundle, unet_profiles
from repro.hls.converter import convert
from repro.hls.precision import layer_based_config
from repro.hls.resources import estimate_resources
from repro.nn import Adam, BinaryCrossentropy
from repro.nn.qat import fine_tune_quantized
from repro.nn.zoo import build_unet
from repro.verify import close_enough_accuracy

WIDTH = 10
EPOCHS = 2


def main() -> None:
    b = bundle()
    ds = b.dataset
    xe = ds.unet_inputs(ds.x_eval[:200])
    xt = ds.unet_inputs(ds.x_train[:600])

    config = layer_based_config(b.unet, None, width=WIDTH,
                                profiles=unet_profiles())
    print(f"target: layer-based ac_fixed<{WIDTH}, x> "
          f"(paper deploys 16 bits; this is the stress regime)")

    # Post-training quantization of the shipped model.
    y_float = b.unet.forward(xe)
    acc_ptq = close_enough_accuracy(y_float,
                                    convert(b.unet, config).predict(xe))
    print(f"PTQ accuracy: MI {acc_ptq['MI']:.1%}, RR {acc_ptq['RR']:.1%}")

    # QAT: clone, fine-tune under quantized weights, re-evaluate.
    print(f"fine-tuning {EPOCHS} epochs with quantized-weight forwards ...")
    clone = build_unet(seed=0)
    clone.set_weights(b.unet.get_weights())
    optimizer = Adam(2e-4)
    fine_tune_quantized(
        clone, xt, ds.y_train[:600], BinaryCrossentropy(), optimizer,
        spec=config, epochs=EPOCHS, batch_size=32, seed=3,
    )
    y_float_qat = clone.forward(xe)
    acc_qat = close_enough_accuracy(
        y_float_qat, convert(clone, config).predict(xe))
    print(f"QAT accuracy: MI {acc_qat['MI']:.1%}, RR {acc_qat['RR']:.1%}")

    res = estimate_resources(convert(clone, config))
    print(f"\nresource reward for the narrow datapath: "
          f"{res.alut_fraction:.0%} ALUTs "
          f"(vs ~32% for the deployed 16-bit design)")
    gain = min(acc_qat.values()) - min(acc_ptq.values())
    print(f"QAT worst-machine gain: {gain:+.1%}")


if __name__ == "__main__":
    main()
