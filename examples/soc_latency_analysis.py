#!/usr/bin/env python
"""SoC latency analysis: where do the 1.74 milliseconds go?

Breaks one frame's step 1–8 latency down by pipeline stage (performance
counters + SignalTap-style trace), then samples the 10,000-frame
latency distribution behind the paper's Fig 5(c).

Run:  python examples/soc_latency_analysis.py
"""

import numpy as np

from repro.experiments.common import bundle, converted
from repro.soc import AchillesBoard, SignalTrace


def main() -> None:
    b = bundle()
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    board = AchillesBoard(hls_model, trace=SignalTrace())

    print("one frame, step by step:")
    timing = board.process_frame(b.dataset.x_eval[0])
    rows = [
        ("preprocess (HPS)", timing.preprocess),
        ("step 1: write input buffer", timing.write_input),
        ("step 2: trigger (CSR)", timing.trigger),
        ("steps 3-6: U-Net IP", timing.ip_compute),
        ("step 7: interrupt", timing.irq),
        ("step 8: read output buffer", timing.read_output),
        ("postprocess (HPS)", timing.postprocess),
    ]
    for label, seconds in rows:
        bar = "#" * max(1, int(60 * seconds / timing.total))
        print(f"  {label:<30} {seconds * 1e6:9.1f} µs  {bar}")
    print(f"  {'TOTAL':<30} {timing.total * 1e6:9.1f} µs")

    print("\nIP-internal breakdown (slowest kernels):")
    for name, cycles in board.ip.latency.slowest_layers(6):
        print(f"  {name:<18} {cycles:>8,} cycles "
              f"({cycles / 100e6 * 1e3:.3f} ms)")

    print("\nsignal capture (SignalTap analogue):")
    for s in board.trace.samples():
        print(f"  t={s.time * 1e3:8.4f} ms  {s.signal} = {s.value}")

    print("\nlatency distribution over 10,000 frames (Fig 5c):")
    lat = board.sample_latency_distribution(10_000, seed=42)
    print(f"  mean {lat.mean() * 1e3:.3f} ms | min {lat.min() * 1e3:.3f} | "
          f"max {lat.max() * 1e3:.3f}")
    print(f"  below 1.9 ms: {(lat < 1.9e-3).mean():.2%} "
          f"(paper: 99.97%)")
    print(f"  throughput: {1 / lat.mean():.0f} fps (paper: 575)")
    # coarse text histogram
    edges = np.linspace(lat.min(), lat.max(), 13)
    hist, _ = np.histogram(lat, bins=edges)
    for lo, hi, count in zip(edges, edges[1:], hist):
        bar = "#" * max(0, int(50 * count / hist.max()))
        print(f"  {lo * 1e3:.2f}-{hi * 1e3:.2f} ms {bar}")


if __name__ == "__main__":
    main()
