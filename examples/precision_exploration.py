#!/usr/bin/env python
"""Precision exploration: reproduce the paper's Table II reasoning live.

Profiles the trained U-Net, shows the per-layer maxima that drive the
layer-based integer-bit allocation, then evaluates the three strategies
(uniform 18-bit, uniform 16-bit, layer-based 16-bit) on accuracy and
resources — including the wrap-around catastrophe of ``ac_fixed<16,7>``.

Run:  python examples/precision_exploration.py
"""

from repro.experiments.common import bundle, unet_profiles
from repro.hls.converter import convert
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.resources import estimate_resources
from repro.utils.tables import Table
from repro.verify import close_enough_accuracy

N_EVAL = 200


def main() -> None:
    b = bundle()
    dataset = b.dataset

    print("per-layer profiling (drives the layer-based x values):")
    profiles = unet_profiles()
    t = Table(["Layer", "max |output|", "max |weight|", "chosen x"])
    lb = layer_based_config(b.unet, None, profiles=profiles)
    for name, prof in profiles.items():
        fmt = lb.for_layer(name).result
        t.add_row([name, f"{prof.max_abs_output:9.2f}",
                   f"{prof.max_abs_weight:7.3f}", fmt.integer])
    print(t.render())

    print("\nevaluating the three strategies on "
          f"{N_EVAL} frames (paper Table II):")
    x = dataset.unet_inputs(dataset.x_eval[:N_EVAL])
    y_float = b.unet.forward(x)
    strategies = {
        "uniform ac_fixed<18,10>": uniform_config(18, 10, model=b.unet),
        "uniform ac_fixed<16,7>": uniform_config(16, 7, model=b.unet),
        "layer-based ac_fixed<16,x>": lb,
    }
    t2 = Table(["Strategy", "Acc MI", "Acc RR", "ALUTs"])
    for label, config in strategies.items():
        hls_model = convert(b.unet, config)
        acc = close_enough_accuracy(y_float, hls_model.predict(x))
        res = estimate_resources(hls_model)
        t2.add_row([label, f"{acc['MI']:.1%}", f"{acc['RR']:.1%}",
                    f"{res.alut_fraction:.0%}"])
    print(t2.render())
    print("\nreading: only the layer-based strategy is simultaneously "
          "accurate and small enough to fit the Arria 10 — the paper's "
          "central co-design result.")


if __name__ == "__main__":
    main()
